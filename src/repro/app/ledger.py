"""A replicated payment ledger — intrusion-tolerant double-spend prevention.

The classic motivation for Byzantine-fault-tolerant total order: a payment
service must process conflicting transfers in one agreed order, or a
client can spend the same balance twice at two different servers.  On
SINTRA's atomic broadcast the ledger is an ordinary deterministic state
machine:

* every command is **client-signed** (standard RSA over the canonical
  command encoding) and carries a per-account **nonce**, so neither a
  corrupted server nor the network can forge or replay transfers — the
  state machine itself verifies, which keeps all replicas identical even
  if a corrupted replica feeds garbage into the channel;
* the total order resolves double spends: of two conflicting transfers,
  whichever is delivered first succeeds and the other fails identically
  at every replica;
* conservation: the sum of balances never changes after minting, an
  invariant the property tests check over random command streams.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.app.replication import ReplicatedService, StateMachine
from repro.common.encoding import decode, encode
from repro.common.errors import EncodingError
from repro.core.party import Party
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey

SIGN_DOMAIN = "sintra.ledger"


def transfer_statement(
    src: bytes, dst: bytes, amount: int, nonce: int
) -> bytes:
    """The byte string a client signs to authorize a transfer."""
    return encode(("ledger-transfer", src, dst, amount, nonce))


class Ledger(StateMachine):
    """The deterministic ledger state machine.

    Accounts are opened with a client public key and minted an initial
    balance (minting is the setup operation a real deployment would gate;
    here it models external deposits).  Transfers must be signed by the
    *source* account's key and carry its next nonce.
    """

    def __init__(self) -> None:
        #: account -> (public key (n, e), balance, next expected nonce)
        self.accounts: Dict[bytes, Tuple[Tuple[int, int], int, int]] = {}

    # -- command encoders --------------------------------------------------------

    @staticmethod
    def cmd_open(account: bytes, pubkey: RSAPublicKey, amount: int) -> bytes:
        return encode(("open", account, pubkey.n, pubkey.e, amount))

    @staticmethod
    def cmd_transfer(
        src: bytes, dst: bytes, amount: int, nonce: int, key: RSAKeyPair
    ) -> bytes:
        signature = key.sign(SIGN_DOMAIN, transfer_statement(src, dst, amount, nonce))
        return encode(("transfer", src, dst, amount, nonce, signature))

    @staticmethod
    def cmd_balance(account: bytes) -> bytes:
        return encode(("balance", account))

    # -- state machine -------------------------------------------------------------

    def apply(self, command: bytes) -> bytes:
        try:
            parsed = decode(command)
        except EncodingError:
            return encode(("error", b"malformed"))
        if not isinstance(parsed, tuple) or not parsed:
            return encode(("error", b"malformed"))
        op = parsed[0]
        try:
            if op == "open":
                return self._open(*parsed[1:])
            if op == "transfer":
                return self._transfer(*parsed[1:])
            if op == "balance":
                (account,) = parsed[1:]
                if account not in self.accounts:
                    return encode(("error", b"unknown account"))
                return encode(("balance", account, self.accounts[account][1]))
        except (ValueError, TypeError):
            return encode(("error", b"malformed"))
        return encode(("error", b"unknown op"))

    def _open(self, account: bytes, key_n: int, key_e: int, amount: int) -> bytes:
        if not isinstance(amount, int) or amount < 0:
            return encode(("error", b"bad amount"))
        if account in self.accounts:
            return encode(("error", b"account exists"))
        self.accounts[account] = ((key_n, key_e), amount, 0)
        return encode(("opened", account, amount))

    def _transfer(
        self, src: bytes, dst: bytes, amount: int, nonce: int, signature: int
    ) -> bytes:
        if src not in self.accounts or dst not in self.accounts:
            return encode(("error", b"unknown account"))
        if not isinstance(amount, int) or amount <= 0:
            return encode(("error", b"bad amount"))
        (key_n, key_e), balance, expected_nonce = self.accounts[src]
        if nonce != expected_nonce:
            return encode(("error", b"bad nonce"))  # replay or gap
        pubkey = RSAPublicKey(n=key_n, e=key_e)
        if not isinstance(signature, int) or not pubkey.verify(
            SIGN_DOMAIN, transfer_statement(src, dst, amount, nonce), signature
        ):
            return encode(("error", b"bad signature"))
        if amount > balance:
            return encode(("error", b"insufficient funds"))
        dkey, dbalance, dnonce = self.accounts[dst]
        self.accounts[src] = ((key_n, key_e), balance - amount, expected_nonce + 1)
        self.accounts[dst] = (dkey, dbalance + amount, dnonce)
        return encode(("transferred", src, dst, amount))

    # -- invariants / inspection ---------------------------------------------------

    def total_supply(self) -> int:
        return sum(balance for _, balance, _ in self.accounts.values())

    def balance(self, account: bytes) -> Optional[int]:
        entry = self.accounts.get(account)
        return entry[1] if entry else None

    def snapshot(self) -> bytes:
        return encode(sorted(
            (account, key[0], key[1], balance, nonce)
            for account, (key, balance, nonce) in self.accounts.items()
        ))

    def restore(self, snapshot: bytes) -> None:
        entries = decode(snapshot)
        if not isinstance(entries, list):
            raise EncodingError("ledger snapshot must be a list")
        accounts: Dict[bytes, Tuple[Tuple[int, int], int, int]] = {}
        for entry in entries:
            if not (isinstance(entry, tuple) and len(entry) == 5):
                raise EncodingError("ledger snapshot entry malformed")
            account, key_n, key_e, balance, nonce = entry
            if not (isinstance(account, bytes) and isinstance(key_n, int)
                    and isinstance(key_e, int) and isinstance(balance, int)
                    and isinstance(nonce, int)):
                raise EncodingError("ledger snapshot entry malformed")
            accounts[account] = ((key_n, key_e), balance, nonce)
        self.accounts = accounts


class ReplicatedLedger(ReplicatedService):
    """One replica of the payment ledger."""

    def __init__(self, party: Party, pid: str = "ledger", **channel_kwargs: Any):
        super().__init__(party, pid, Ledger(), **channel_kwargs)

    @property
    def ledger(self) -> Ledger:
        return self.state  # type: ignore[return-value]

    def open(self, account: bytes, pubkey: RSAPublicKey, amount: int) -> None:
        self.submit(Ledger.cmd_open(account, pubkey, amount))

    def transfer(
        self, src: bytes, dst: bytes, amount: int, nonce: int, key: RSAKeyPair
    ) -> None:
        self.submit(Ledger.cmd_transfer(src, dst, amount, nonce, key))

    def balance_of(self, account: bytes) -> Optional[int]:
        return self.ledger.balance(account)
