"""Per-host CPU cost model for public-key operations.

The paper's hardware tables report, for every host, the time of one
1024-bit modular exponentiation (the ``exp`` column, 55-427 ms).  That
single figure, together with the operation accounting of
:mod:`repro.crypto.opcount`, determines how long a simulated host is busy
handling a message:

    duration = overhead + exp_s * scaled_units / UNITS_PER_EXP_1024

where ``scaled_units`` rescales the actually-performed exponentiations to
the experiment's *nominal* key size (full-size exponents cubically, short
exponents quadratically — matching the paper's Sec. 4.2 discussion).

The ``overhead`` term models everything that is not public-key arithmetic:
Java object churn, threading, MAC computation, serialization.  It is the
single calibration knob of the reproduction and is documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.crypto.opcount import OpCounter

#: Work units of one full 1024-bit exponentiation (modbits^2 * expbits).
UNITS_PER_EXP_1024 = 1024 * 1024 * 1024


@dataclass(frozen=True)
class HostSpec:
    """One machine of the paper's testbeds.

    ``exp_ms`` is the measured time of a 1024-bit modular exponentiation
    (paper hardware tables); ``overhead_ms`` is the per-message protocol
    overhead (JVM, threading, MAC, serialization) used for calibration.
    """

    name: str
    location: str
    cpu: str
    mhz: int
    exp_ms: float
    overhead_ms: float = 2.0


class CostModel:
    """Converts recorded crypto work into simulated CPU seconds."""

    def __init__(self, host: HostSpec):
        self.host = host

    def seconds(self, counter: OpCounter, op_scale: float = 1.0) -> float:
        """CPU seconds for the operations in ``counter``.

        ``op_scale`` is the ratio nominal-keysize / actual-keysize: a run
        executed with 512-bit keys but nominally measuring a 1024-bit
        configuration passes ``op_scale = 2``.

        Under the ``bill_naive`` accounting mode of
        :mod:`repro.crypto.fastexp` the *naive-equivalent* mix is billed
        instead of the accelerated one, which preserves the exact handler
        durations (and therefore the delivery schedule) of an
        unaccelerated run while the counters report the accelerated mix.
        """
        from repro.crypto import fastexp

        if fastexp.config().bill_naive:
            units = counter.scaled_units_naive(op_scale)
        else:
            units = counter.scaled_units(op_scale)
        return (self.host.exp_ms / 1000.0) * units / UNITS_PER_EXP_1024

    def charge(self, recorder, counter: OpCounter, op_scale: float = 1.0) -> float:
        """Like :meth:`seconds`, but also charges the work to ``recorder``.

        Records the modelled CPU time of this handler's public-key
        arithmetic into the ``cpu.crypto_s`` histogram and accumulates the
        op counts (via :func:`repro.crypto.opcount.charge`), so a
        benchmark export shows both *how many* exponentiations each run
        performed and *where* the simulated CPU time went.
        """
        from repro.crypto.opcount import charge as charge_ops

        seconds = self.seconds(counter, op_scale)
        charge_ops(recorder, counter)
        if seconds:
            recorder.observe("cpu.crypto_s", seconds)
        return seconds


# --- The paper's hosts (Sec. 4 hardware tables) --------------------------------

def _overhead_ms(exp_ms: float) -> float:
    """Calibrated per-message overhead of the paper's Java prototype.

    The paper attributes the slow LAN numbers to its heavily threaded Java
    implementation; a per-message constant of ~8 ms on the reference host
    (P0, 93 ms/exp), scaled by each host's effective JVM speed — for which
    the measured exponentiation time is the best proxy the paper gives —
    reproduces the Table 1 LAN column and Figure 4's per-sender ordering
    (P3/Win2k slower than P2/AIX).  See EXPERIMENTS.md for the record.
    """
    return 8.0 * (exp_ms / 93.0)


def _host(name: str, location: str, cpu: str, mhz: int, exp_ms: float) -> HostSpec:
    return HostSpec(name, location, cpu, mhz, exp_ms=exp_ms,
                    overhead_ms=_overhead_ms(exp_ms))


#: LAN setup at the IBM Zurich lab.
LAN_HOSTS: List[HostSpec] = [
    _host("P0", "Zurich LAN", "P3/Linux", 933, exp_ms=93.0),
    _host("P1", "Zurich LAN", "P3/Linux", 800, exp_ms=70.0),
    _host("P2", "Zurich LAN", "PPC604/AIX", 332, exp_ms=105.0),
    _host("P3", "Zurich LAN", "P3/Win2k", 730, exp_ms=132.0),
]

#: Internet setup on three continents.
INTERNET_HOSTS: List[HostSpec] = [
    _host("P0", "Zurich", "P3/Linux", 933, exp_ms=93.0),
    _host("P1", "Tokyo", "P3/Linux", 997, exp_ms=55.0),
    _host("P2", "New York", "P3/Linux", 548, exp_ms=101.0),
    _host("P3", "California", "PPro/Linux", 200, exp_ms=427.0),
]

#: Hybrid 7-host configuration: the LAN machines plus the remote sites
#: (P0/Zurich is shared between the two setups, as in the paper).
HYBRID_HOSTS: List[HostSpec] = LAN_HOSTS + [
    _host("P4", "Tokyo", "P3/Linux", 997, exp_ms=55.0),
    _host("P5", "New York", "P3/Linux", 548, exp_ms=101.0),
    _host("P6", "California", "PPro/Linux", 200, exp_ms=427.0),
]


def default_cost_models(hosts: Optional[List[HostSpec]] = None) -> List[CostModel]:
    """Cost models for a host list (defaults to the LAN setup)."""
    return [CostModel(h) for h in (hosts or LAN_HOSTS)]
