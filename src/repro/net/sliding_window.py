"""Sliding-window reliable links with authenticated acknowledgments.

The paper (Sec. 3) notes that SINTRA's point-to-point links ran over plain
TCP "and are therefore subject to a denial-of-service attack by sending
forged TCP acknowledgements.  It is planned to replace TCP by SINTRA's own
sliding-window implementation, which will provide authenticated
acknowledgments."  This module implements that planned component.

A :class:`SlidingWindowEndpoint` turns an *unreliable* datagram service
(loss, duplication, reordering — but not forgery-resistance) into the
reliable FIFO link the protocol stack assumes:

* data datagrams carry ``(session, seq, payload)`` and an HMAC under the
  pairwise link key, so an attacker who can inject datagrams cannot forge
  payloads;
* acknowledgments are *cumulative and authenticated*: a forged ACK cannot
  advance the sender's window, closing exactly the DoS the paper calls
  out (a TCP sender tricked by forged ACKs discards data the receiver
  never got — here the sender keeps retransmitting until a genuine ACK
  arrives);
* a fixed-size window bounds the data in flight; retransmission is driven
  by an explicit ``poll(now)`` so the implementation stays sans-I/O and
  runs under the simulator, asyncio, or direct-drive tests alike.

The endpoint is one *direction* of a link; a full duplex link is two
endpoints per side sharing the datagram service.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.encoding import decode, encode
from repro.common.errors import EncodingError, LinkOverflow, ProtocolError
from repro.crypto.hmac_auth import LinkAuthenticator

KIND_DATA = "dat"
KIND_ACK = "ack"

DEFAULT_WINDOW = 32
DEFAULT_RTO = 0.25


def _data_tag(auth: LinkAuthenticator, session: bytes, seq: int, payload: bytes) -> bytes:
    return auth.tag(encode((KIND_DATA, session, seq, payload)))


def _ack_tag(auth: LinkAuthenticator, session: bytes, cumulative: int) -> bytes:
    return auth.tag(encode((KIND_ACK, session, cumulative)))


def make_data_datagram(
    auth: LinkAuthenticator, session: bytes, seq: int, payload: bytes
) -> bytes:
    return encode((KIND_DATA, session, seq, payload, _data_tag(auth, session, seq, payload)))


def make_ack_datagram(auth: LinkAuthenticator, session: bytes, cumulative: int) -> bytes:
    return encode((KIND_ACK, session, cumulative, _ack_tag(auth, session, cumulative)))


class SlidingWindowSender:
    """Send side: window, retransmission, authenticated-ACK validation."""

    def __init__(
        self,
        auth: LinkAuthenticator,
        session: bytes,
        window: int = DEFAULT_WINDOW,
        rto: float = DEFAULT_RTO,
        max_backlog: Optional[int] = None,
        overflow: str = "drop-oldest",
    ):
        if window < 1:
            raise ProtocolError("window must be at least 1")
        if overflow not in ("drop-oldest", "raise"):
            raise ProtocolError("overflow policy is 'drop-oldest' or 'raise'")
        self._auth = auth
        self.session = session
        self.window = window
        self.rto = rto
        self.max_backlog = max_backlog
        self.overflow = overflow
        self._next_seq = 0
        self._base = 0  # lowest unacknowledged sequence number
        self._backlog: List[bytes] = []
        self._inflight: Dict[int, Tuple[bytes, float]] = {}  # seq -> (payload, last tx)
        self.retransmissions = 0
        self.forged_acks = 0
        self.overflow_dropped = 0

    # -- outbound -----------------------------------------------------------------

    def send(self, payload: bytes, now: float) -> List[bytes]:
        """Queue ``payload``; returns datagrams to transmit now.

        A bounded sender (``max_backlog``) degrades under a peer that never
        acknowledges: ``drop-oldest`` discards the oldest backlog entry
        (counted in :attr:`overflow_dropped`) so one dead peer cannot
        exhaust memory, while ``raise`` surfaces :class:`LinkOverflow` to
        the caller.
        """
        if not isinstance(payload, (bytes, bytearray)):
            raise ProtocolError("payloads are byte strings")
        if self.max_backlog is not None and len(self._backlog) >= self.max_backlog:
            if self.overflow == "raise":
                raise LinkOverflow(
                    f"link backlog full ({self.max_backlog} frames unacknowledged)"
                )
            self._backlog.pop(0)
            self.overflow_dropped += 1
        self._backlog.append(bytes(payload))
        return self._fill_window(now)

    def _fill_window(self, now: float) -> List[bytes]:
        out: List[bytes] = []
        while self._backlog and len(self._inflight) < self.window:
            payload = self._backlog.pop(0)
            seq = self._next_seq
            self._next_seq += 1
            self._inflight[seq] = (payload, now)
            out.append(make_data_datagram(self._auth, self.session, seq, payload))
        return out

    def poll(self, now: float) -> List[bytes]:
        """Retransmit everything in flight whose RTO expired.

        The comparison carries a small slack so a timer firing exactly at
        the deadline retransmits despite floating-point rounding.
        """
        out: List[bytes] = []
        for seq, (payload, last) in sorted(self._inflight.items()):
            if now - last >= self.rto - 1e-9:
                self._inflight[seq] = (payload, now)
                self.retransmissions += 1
                out.append(make_data_datagram(self._auth, self.session, seq, payload))
        return out

    # -- session resumption ----------------------------------------------------------

    def resume(self, now: float) -> List[bytes]:
        """Retransmit everything in flight immediately (same session).

        Called after the carrier reconnects: frames unacknowledged at
        disconnect are re-sent without waiting for the RTO, and the
        receiver's intact per-session state suppresses any duplicates.
        """
        out: List[bytes] = []
        for seq, (payload, _) in sorted(self._inflight.items()):
            self._inflight[seq] = (payload, now)
            self.retransmissions += 1
            out.append(make_data_datagram(self._auth, self.session, seq, payload))
        out.extend(self._fill_window(now))
        return out

    def rebind(self, session: bytes, now: float) -> List[bytes]:
        """Renumber all unacknowledged traffic under a fresh ``session``.

        Called when the peer *instance* restarted (it announced a session
        this side has never seen, so its receive state is gone): every
        in-flight and backlogged payload is re-queued in order and the
        window restarts at sequence 0.  Delivery across a rebind is
        at-least-once — a payload whose ACK was lost may be delivered
        again — while within a session it is exactly-once FIFO.
        """
        pending = [payload for _, (payload, _) in sorted(self._inflight.items())]
        self.session = session
        self._next_seq = 0
        self._base = 0
        self._inflight = {}
        self._backlog = pending + self._backlog
        return self._fill_window(now)

    @property
    def backlog_depth(self) -> int:
        """Frames queued or unacknowledged (the link's memory footprint)."""
        return len(self._backlog) + len(self._inflight)

    # -- inbound ACKs ----------------------------------------------------------------

    def on_ack(self, datagram_fields: tuple, now: float) -> List[bytes]:
        """Process an ACK datagram's fields; returns new transmissions."""
        _, session, cumulative, tag = datagram_fields
        if session != self.session or not isinstance(cumulative, int):
            return []
        if not isinstance(tag, bytes) or not self._auth.verify(
            encode((KIND_ACK, session, cumulative)), tag
        ):
            self.forged_acks += 1  # the authenticated-ACK property
            return []
        if cumulative > self._base:
            for seq in range(self._base, min(cumulative, self._next_seq)):
                self._inflight.pop(seq, None)
            self._base = min(cumulative, self._next_seq)
        return self._fill_window(now)

    @property
    def idle(self) -> bool:
        return not self._inflight and not self._backlog

    @property
    def next_timeout(self) -> Optional[float]:
        if not self._inflight:
            return None
        return min(last for _, last in self._inflight.values()) + self.rto


class SlidingWindowReceiver:
    """Receive side: verification, reordering buffer, cumulative ACKs."""

    def __init__(
        self,
        auth: LinkAuthenticator,
        session: bytes,
        deliver: Callable[[bytes], None],
        reorder_limit: int = 4 * DEFAULT_WINDOW,
    ):
        self._auth = auth
        self.session = session
        self._deliver = deliver
        self._expected = 0
        self._buffer: Dict[int, bytes] = {}
        self._reorder_limit = reorder_limit
        self.forged_data = 0
        self.duplicates = 0

    def on_data(self, datagram_fields: tuple) -> List[bytes]:
        """Process a data datagram's fields; returns ACK datagrams."""
        _, session, seq, payload, tag = datagram_fields
        if session != self.session or not isinstance(seq, int) or seq < 0:
            return []
        if not isinstance(payload, bytes) or not isinstance(tag, bytes):
            return []
        if not self._auth.verify(encode((KIND_DATA, session, seq, payload)), tag):
            self.forged_data += 1
            return []
        if seq < self._expected or seq in self._buffer:
            self.duplicates += 1
        elif seq < self._expected + self._reorder_limit:
            self._buffer[seq] = payload
            while self._expected in self._buffer:
                self._deliver(self._buffer.pop(self._expected))
                self._expected += 1
        # Always re-ACK: the cumulative ACK also repairs lost ACKs.
        return [make_ack_datagram(self._auth, self.session, self._expected)]

    @property
    def delivered_count(self) -> int:
        return self._expected


class SlidingWindowEndpoint:
    """One direction of a link: a sender and the peer's receiver glue.

    ``transmit`` is the unreliable datagram service; ``deliver`` receives
    in-order payloads on the receiving side.
    """

    def __init__(
        self,
        auth: LinkAuthenticator,
        session: bytes,
        transmit: Callable[[bytes], None],
        deliver: Callable[[bytes], None],
        window: int = DEFAULT_WINDOW,
        rto: float = DEFAULT_RTO,
    ):
        self.sender = SlidingWindowSender(auth, session, window=window, rto=rto)
        self.receiver = SlidingWindowReceiver(auth, session, deliver)
        self._transmit = transmit

    def send(self, payload: bytes, now: float) -> None:
        for datagram in self.sender.send(payload, now):
            self._transmit(datagram)

    def poll(self, now: float) -> None:
        for datagram in self.sender.poll(now):
            self._transmit(datagram)

    def on_datagram(self, datagram: bytes, now: float) -> None:
        """Dispatch one raw datagram (data or ACK); malformed ones drop."""
        try:
            fields = decode(datagram)
        except EncodingError:
            return
        if not isinstance(fields, tuple) or not fields:
            return
        if fields[0] == KIND_DATA and len(fields) == 5:
            for ack in self.receiver.on_data(fields):
                self._transmit(ack)
        elif fields[0] == KIND_ACK and len(fields) == 4:
            for datagram_out in self.sender.on_ack(fields, now):
                self._transmit(datagram_out)
