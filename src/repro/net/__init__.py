"""Network substrate: discrete-event simulation, topology models, the
per-host crypto cost model, authenticated links and fault injection."""

from repro.net.sim import SimFuture, SimNode, SimQueue, Simulator
from repro.net.latency import (
    FIG3_RTT_MS,
    INTERNET_SITE_NAMES,
    LatencyModel,
    MatrixLatency,
    UniformLatency,
    hybrid_latency,
    internet_latency,
    lan_latency,
)
from repro.net.costmodel import (
    CostModel,
    HostSpec,
    HYBRID_HOSTS,
    INTERNET_HOSTS,
    LAN_HOSTS,
)
from repro.net.faults import (
    CrashFault,
    FaultPlan,
    HealingPartitionAdversary,
    NetworkAdversary,
    SlowLinkAdversary,
    SocketChaosPlan,
    TargetedDelayAdversary,
)
from repro.net.failure_detector import ALIVE, DOWN, SUSPECT, FailureDetector
from repro.net.runtime import SimContext, SimRuntime

__all__ = [
    "Simulator",
    "SimNode",
    "SimFuture",
    "SimQueue",
    "LatencyModel",
    "UniformLatency",
    "MatrixLatency",
    "lan_latency",
    "internet_latency",
    "hybrid_latency",
    "FIG3_RTT_MS",
    "INTERNET_SITE_NAMES",
    "CostModel",
    "HostSpec",
    "LAN_HOSTS",
    "INTERNET_HOSTS",
    "HYBRID_HOSTS",
    "FaultPlan",
    "CrashFault",
    "NetworkAdversary",
    "SlowLinkAdversary",
    "TargetedDelayAdversary",
    "HealingPartitionAdversary",
    "SocketChaosPlan",
    "FailureDetector",
    "ALIVE",
    "SUSPECT",
    "DOWN",
    "SimContext",
    "SimRuntime",
]
