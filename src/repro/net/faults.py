"""Fault and adversary injection.

SINTRA's model lets up to ``t`` parties behave arbitrarily while the
network scheduler may delay messages indefinitely (but honest links are
reliable, so messages are never *dropped* between honest parties).  Two
kinds of adversaries are provided:

* :class:`NetworkAdversary` — controls the asynchronous scheduler: extra
  per-link delays, targeted slow-down of victims, partitions that heal at
  a chosen time.  These never violate reliability, only timeliness.

* Party-level faults — :class:`CrashFault` silences a party from a chosen
  time; Byzantine *protocol* behaviours (equivocation, bogus shares, wrong
  votes) are implemented as malicious protocol subclasses next to the
  protocols they attack (see ``repro.core``'s tests), since they need the
  protocol's own message vocabulary.  Wire-level Byzantine behaviour
  (corrupting/replaying a corrupted party's own frames) lives in
  :mod:`repro.testing.mutator` and plugs into the runtime's wire taps.

Determinism: adversaries never own an RNG.  Every ``extra_delay`` call
receives the runtime's dedicated fault stream (``SimRuntime.fault_rng``,
derived from the root seed), so an adversarial run is reproducible from a
single integer and fault draws never perturb latency sampling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple


class NetworkAdversary:
    """Scheduler adversary: may add finite delay to any message.

    The base class is benign (no interference); subclasses override
    :meth:`extra_delay`.
    """

    def extra_delay(
        self, src: int, dst: int, nbytes: int, now: float, rng: random.Random
    ) -> float:
        """Additional one-way delay (seconds) for this message."""
        return 0.0


@dataclass
class SlowLinkAdversary(NetworkAdversary):
    """Adds a fixed delay to specific directed links."""

    delays: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def extra_delay(self, src, dst, nbytes, now, rng):
        return self.delays.get((src, dst), 0.0)


@dataclass
class TargetedDelayAdversary(NetworkAdversary):
    """Delays all traffic to/from a set of victims by a random amount.

    Models an adversarial scheduler trying to starve chosen honest parties
    — the randomized protocols must still terminate.
    """

    victims: Set[int] = field(default_factory=set)
    min_delay: float = 0.0
    max_delay: float = 1.0

    def extra_delay(self, src, dst, nbytes, now, rng):
        if src in self.victims or dst in self.victims:
            return rng.uniform(self.min_delay, self.max_delay)
        return 0.0


@dataclass
class HealingPartitionAdversary(NetworkAdversary):
    """Separates two groups until ``heal_at``; traffic across the cut is
    delayed so that it arrives only after the partition heals.

    A *permanent* partition would violate the asynchronous model's
    reliability assumption, so the partition must heal.
    """

    group_a: Set[int] = field(default_factory=set)
    heal_at: float = 5.0

    def extra_delay(self, src, dst, nbytes, now, rng):
        crosses = (src in self.group_a) != (dst in self.group_a)
        if crosses and now < self.heal_at:
            return (self.heal_at - now) + rng.uniform(0.0, 0.05)
        return 0.0


@dataclass
class DelaySpikeAdversary(NetworkAdversary):
    """Randomly spikes individual messages' delays.

    Each message independently suffers an extra delay of up to
    ``max_delay`` with probability ``prob`` — the fuzzer's basic tool for
    exploring delivery orderings: per-pair FIFO is preserved (the runtime
    clamps arrivals), but cross-link interleavings are randomized.
    """

    prob: float = 0.1
    max_delay: float = 1.0

    def extra_delay(self, src, dst, nbytes, now, rng):
        if rng.random() < self.prob:
            return rng.uniform(0.0, self.max_delay)
        return 0.0


class CompositeAdversary(NetworkAdversary):
    """Combines several scheduler adversaries; their delays add up."""

    def __init__(self, adversaries: Sequence[NetworkAdversary]):
        self.adversaries = tuple(adversaries)

    def extra_delay(self, src, dst, nbytes, now, rng):
        return sum(
            a.extra_delay(src, dst, nbytes, now, rng) for a in self.adversaries
        )


@dataclass
class SocketChaosPlan:
    """Socket-level chaos for the *real* asyncio TCP runtime.

    Consumed by :class:`repro.testing.netchaos.ChaosProxy`, which sits
    between real ``TcpNode`` sockets and, per forwarded chunk, draws from
    a seeded stream to inject connection resets, stalls, truncated writes
    and byte corruption — the transport-level faults the simulator's
    adversaries cannot express.  Unlike :class:`NetworkAdversary` these
    *do* violate TCP's delivery guarantees; the resilient transport
    (supervised reconnect + sliding-window sessions) must mask them.
    """

    reset_prob: float = 0.0  # abort both directions of the connection
    stall_prob: float = 0.0  # pause this direction for ``stall_s``
    stall_s: float = 0.02
    corrupt_prob: float = 0.0  # flip one bit of the chunk
    truncate_prob: float = 0.0  # forward a prefix, then abort


@dataclass
class ProcessFault:
    """Full process kill/restart of one replica (crash-recovery model).

    Unlike :class:`CrashFault` — which silences a party forever, as in the
    paper's static model — a process fault destroys the victim's entire
    in-memory state (protocol instances, state machine, sockets) and later
    restarts it from durable storage plus peer state transfer
    (``repro.recovery``).  Consumed by
    :class:`repro.testing.netchaos.ReplicaProcess.execute`, which kills
    the victim ``kill_after_s`` seconds in, keeps it down for
    ``downtime_s``, then restarts and recovers it.  With ``wipe_disk`` the
    durable directory is destroyed too, so recovery runs purely from
    peers.
    """

    victim: int
    kill_after_s: float = 1.0
    downtime_s: float = 0.25
    wipe_disk: bool = False


@dataclass
class CrashFault:
    """Party ``victim`` stops sending anything at ``crash_at`` seconds.

    Applied at the network layer: the paper's model recovers crashed
    servers only by mechanisms outside SINTRA, so a crash is simply an
    eternally-silent party.
    """

    victim: int
    crash_at: float = 0.0

    def is_silenced(self, src: int, now: float) -> bool:
        return src == self.victim and now >= self.crash_at


class FaultPlan:
    """Aggregates adversaries and crash faults for one simulation run."""

    def __init__(
        self,
        adversary: Optional[NetworkAdversary] = None,
        crashes: Optional[Tuple[CrashFault, ...]] = None,
        process_faults: Optional[Tuple[ProcessFault, ...]] = None,
    ):
        self.adversary = adversary or NetworkAdversary()
        self.crashes = tuple(crashes or ())
        #: kill/restart faults; interpreted by the TCP chaos harness, not
        #: the simulator (a process fault needs real sockets and disks)
        self.process_faults = tuple(process_faults or ())

    def drops(self, src: int, now: float) -> bool:
        return any(c.is_silenced(src, now) for c in self.crashes)

    def extra_delay(self, src, dst, nbytes, now, rng) -> float:
        return self.adversary.extra_delay(src, dst, nbytes, now, rng)
