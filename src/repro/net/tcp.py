"""Real-network runtime: the SINTRA stack over asyncio TCP.

The paper's implementation runs its reliable point-to-point links over TCP
with HMAC authentication (Sec. 3); this module is the equivalent runtime
for this reproduction.  The same sans-I/O protocol classes used under the
simulator run unchanged: only the :class:`~repro.core.protocol.Context`
implementation differs.

A party is identified by a ``host:port`` endpoint, as in the paper's
configuration files.  Every party listens on its endpoint and opens one
outgoing connection to each peer (retrying until the peer is up); frames
are length-prefixed sealed messages (HMAC per pair of servers).

Usage (see ``examples/real_network.py``)::

    nodes = [TcpNode(group, i, endpoints) for i in range(n)]
    await asyncio.gather(*(node.start() for node in nodes))
    channels = [AtomicChannel(node.ctx, "ch") for node in nodes]
    ...
    await asyncio.gather(*(node.stop() for node in nodes))
"""

from __future__ import annotations

import asyncio
import logging
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ReproError, TransportError
from repro.core.protocol import Context, Router
from repro.crypto.dealer import GroupConfig
from repro.net import links
from repro.net.message import pack_body, unpack_body

logger = logging.getLogger("repro.net.tcp")

_LEN = struct.Struct(">I")
MAX_FRAME = 16 * 1024 * 1024


class AsyncFuture:
    """asyncio-backed future with the SimFuture interface (awaitable)."""

    def __init__(self) -> None:
        self._fut: asyncio.Future = asyncio.get_event_loop().create_future()

    @property
    def done(self) -> bool:
        return self._fut.done()

    @property
    def value(self) -> Any:
        return self._fut.result() if self._fut.done() else None

    def resolve(self, value: Any = None) -> None:
        if not self._fut.done():
            self._fut.set_result(value)

    def add_done_callback(self, cb: Callable) -> None:
        self._fut.add_done_callback(lambda f: cb(self))

    def __await__(self):
        return self._fut.__await__()


class AsyncQueue:
    """asyncio.Queue with the SimQueue interface (``get`` is awaitable)."""

    def __init__(self) -> None:
        self._q: asyncio.Queue = asyncio.Queue()

    def put(self, item: Any) -> None:
        self._q.put_nowait(item)

    def get(self):
        return self._q.get()

    def can_get(self) -> bool:
        return not self._q.empty()

    def __len__(self) -> int:
        return self._q.qsize()


class TcpContext(Context):
    """Protocol context bound to a :class:`TcpNode`."""

    def __init__(self, node: "TcpNode"):
        self.node_id = node.index
        self.n = node.group.n
        self.t = node.group.t
        self.crypto = node.group.party(node.index)
        self.router = Router()
        self._node = node

    def send(self, dst: int, pid: str, mtype: str, payload: Any) -> None:
        body = pack_body(pid, mtype, payload)
        frame = links.seal(self.crypto, dst, body)
        self._node.send_frame(dst, frame)

    def effect(self, fn: Callable, *args: Any) -> None:
        asyncio.get_event_loop().call_soon(fn, *args)

    def defer(self, fn: Callable[[], None]) -> None:
        asyncio.get_event_loop().call_soon(fn)

    def set_timer(self, delay: float, fn: Callable[[], None]):
        from repro.core.protocol import Timer

        timer = Timer()

        def fire() -> None:
            if timer.active:
                fn()

        asyncio.get_event_loop().call_later(delay, fire)
        return timer

    def new_queue(self) -> AsyncQueue:
        return AsyncQueue()

    def new_future(self) -> AsyncFuture:
        return AsyncFuture()

    def now(self) -> float:
        return asyncio.get_event_loop().time()


class TcpNode:
    """One SINTRA server on a real TCP network."""

    def __init__(
        self,
        group: GroupConfig,
        index: int,
        endpoints: List[Tuple[str, int]],
        connect_retry_s: float = 0.1,
    ):
        if len(endpoints) != group.n:
            raise TransportError("need one endpoint per party")
        self.group = group
        self.index = index
        self.endpoints = endpoints
        self.connect_retry_s = connect_retry_s
        self.ctx = TcpContext(self)
        self._server: Optional[asyncio.AbstractServer] = None
        self._out: Dict[int, asyncio.Queue] = {}
        self._tasks: List[asyncio.Task] = []
        self.frames_received = 0
        self.auth_failures = 0

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        """Listen on the local endpoint and connect to all peers."""
        host, port = self.endpoints[self.index]
        self._server = await asyncio.start_server(self._on_peer, host, port)
        for peer in range(self.group.n):
            if peer == self.index:
                continue
            self._out[peer] = asyncio.Queue()
            self._tasks.append(asyncio.ensure_future(self._writer(peer)))

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- sending ----------------------------------------------------------------

    def send_frame(self, dst: int, frame: bytes) -> None:
        if dst == self.index:
            # Local loop: deliver asynchronously like any other message.
            asyncio.get_event_loop().call_soon(self._deliver, frame)
        else:
            self._out[dst].put_nowait(frame)

    async def _writer(self, peer: int) -> None:
        host, port = self.endpoints[peer]
        pending: Optional[bytes] = None  # frame being written when the link died
        while True:
            writer: Optional[asyncio.StreamWriter] = None
            while writer is None:
                try:
                    _, writer = await asyncio.open_connection(host, port)
                except OSError:
                    await asyncio.sleep(self.connect_retry_s)
            try:
                while True:
                    frame = pending if pending is not None else await self._out[peer].get()
                    pending = frame
                    writer.write(_LEN.pack(len(frame)) + frame)
                    await writer.drain()
                    pending = None
            except (ConnectionError, OSError):
                # The connection died after establishment: re-enter the
                # connect loop; ``pending`` is retransmitted first so the
                # frame being written is not lost.
                await asyncio.sleep(self.connect_retry_s)
            finally:
                writer.close()

    # -- receiving -----------------------------------------------------------------

    async def _on_peer(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                header = await reader.readexactly(4)
                (length,) = _LEN.unpack(header)
                if length > MAX_FRAME:
                    raise TransportError("oversized frame")
                frame = await reader.readexactly(length)
                self._deliver(frame)
        except (asyncio.IncompleteReadError, ConnectionError, TransportError):
            pass
        finally:
            writer.close()

    def _deliver(self, frame: bytes) -> None:
        try:
            sender, body = links.open_sealed(self.ctx.crypto, frame)
            msg = unpack_body(sender, body)
        except (ReproError, TransportError):
            self.auth_failures += 1
            return
        self.frames_received += 1
        self.ctx.router.dispatch(msg.sender, msg.pid, msg.mtype, msg.payload)


def local_endpoints(n: int, base_port: int = 47310) -> List[Tuple[str, int]]:
    """Localhost endpoints for an in-process test deployment."""
    return [("127.0.0.1", base_port + i) for i in range(n)]
