"""Resilient real-network runtime: the SINTRA stack over asyncio TCP.

The paper's implementation runs its reliable point-to-point links over TCP
with HMAC authentication (Sec. 3) and explicitly flags plain TCP as a
liability — forged TCP acknowledgments can make a sender discard data the
receiver never got — planning to replace it with SINTRA's own
sliding-window links with *authenticated* acknowledgments.  This module
realizes that plan for the real network: the sans-I/O
:mod:`repro.net.sliding_window` endpoints run **over** TCP framing, and a
connection supervisor per directed peer link keeps the carrier alive.

Layering, top to bottom:

* protocol stack — unchanged sans-I/O classes, driven via :class:`TcpContext`;
* sealed frames — pairwise-HMAC wire messages (:mod:`repro.net.links`);
* sliding-window session — authenticated data + cumulative authenticated
  ACKs, bounded in-flight window, RTO retransmission.  Frames
  unacknowledged when a TCP connection dies are retransmitted after
  reconnect; duplicates from replays are suppressed by the receiver's
  per-session state (exactly-once FIFO within a session, at-least-once
  across a peer *restart*);
* connection supervisor — one outgoing TCP connection per directed link,
  re-dialled forever with capped exponential backoff and deterministic
  jitter (seeded via :mod:`repro.common.rng`);
* failure detector — heartbeats and send/ack progress feed a per-peer
  ``alive / suspect / down`` estimate (:mod:`repro.net.failure_detector`).

Every frame on the wire is a length-prefixed canonical tuple:

* ``("hlo", sender, session, tag)`` — first frame on every connection;
  binds the connection to ``sender`` and announces the data session;
* ``("dat", session, seq, payload, tag)`` / ``("ack", session, cum, tag)``
  — the sliding-window datagrams (see :mod:`repro.net.sliding_window`);
* ``("hb", sender, counter, tag)`` — monotone authenticated heartbeat.

Degradation policy: all per-peer queues are bounded (window backlog and
outbox, drop-oldest with counters), so one dead peer cannot exhaust
memory while the other ``n - t`` make progress; dropped data frames are
recovered by RTO retransmission if the peer returns.  Per-peer counters
(reconnects, retransmissions, backlog depth, auth failures, …) are
exposed via :meth:`TcpNode.link_stats` / :meth:`TcpNode.stats`.

Sessions are unique per node *instance* (derived from ``seed`` when one
is given — restart tests must use a distinct seed — and from OS entropy
otherwise), so a restarted peer is detected by its fresh session and both
directions renumber without losing queued frames.

Usage (see ``examples/real_network.py``)::

    nodes = [TcpNode(group, i, endpoints) for i in range(n)]
    await asyncio.gather(*(node.start() for node in nodes))
    channels = [AtomicChannel(node.ctx, "ch") for node in nodes]
    ...
    await asyncio.gather(*(node.stop() for node in nodes))
"""

from __future__ import annotations

import asyncio
import collections
import logging
import socket
import struct
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.common import rng as rng_mod
from repro.common.encoding import decode, encode
from repro.common.errors import EncodingError, ReproError, TransportError
from repro.core.protocol import Context, Router
from repro.crypto.dealer import GroupConfig
from repro.net import links
from repro.net.failure_detector import FailureDetector
from repro.net.message import pack_body, unpack_body
from repro.net.sliding_window import (
    KIND_ACK,
    KIND_DATA,
    SlidingWindowReceiver,
    SlidingWindowSender,
)
from repro.obs.recorder import NULL as NULL_RECORDER
from repro.obs.recorder import Recorder

logger = logging.getLogger("repro.net.tcp")

_LEN = struct.Struct(">I")
MAX_FRAME = 16 * 1024 * 1024

KIND_HELLO = "hlo"
KIND_HEARTBEAT = "hb"

SESSION_BYTES = 16


class AsyncFuture:
    """asyncio-backed future with the SimFuture interface (awaitable)."""

    def __init__(self) -> None:
        self._fut: asyncio.Future = asyncio.get_running_loop().create_future()

    @property
    def done(self) -> bool:
        return self._fut.done()

    @property
    def value(self) -> Any:
        return self._fut.result() if self._fut.done() else None

    def resolve(self, value: Any = None) -> None:
        if not self._fut.done():
            self._fut.set_result(value)

    def add_done_callback(self, cb: Callable) -> None:
        self._fut.add_done_callback(lambda f: cb(self))

    def __await__(self):
        return self._fut.__await__()


class AsyncQueue:
    """asyncio.Queue with the SimQueue interface (``get`` is awaitable)."""

    def __init__(self) -> None:
        self._q: asyncio.Queue = asyncio.Queue()

    def put(self, item: Any) -> None:
        self._q.put_nowait(item)

    def get(self):
        return self._q.get()

    def can_get(self) -> bool:
        return not self._q.empty()

    def __len__(self) -> int:
        return self._q.qsize()


class BackoffPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delay(attempt)`` for attempts 0, 1, 2, … grows as ``base *
    multiplier**attempt`` up to ``cap``, then each delay is spread by a
    symmetric jitter fraction drawn from ``rng`` — seeded via
    :func:`repro.common.rng.derive`, so a test's reconnect schedule is
    reproducible from one integer while real deployments decorrelate
    their reconnect storms.
    """

    def __init__(
        self,
        base: float = 0.05,
        cap: float = 2.0,
        multiplier: float = 2.0,
        jitter: float = 0.25,
        rng=None,
    ):
        if base <= 0 or cap < base or multiplier < 1 or not 0 <= jitter < 1:
            raise TransportError("invalid backoff parameters")
        self.base = base
        self.cap = cap
        self.multiplier = multiplier
        self.jitter = jitter
        self._rng = rng if rng is not None else rng_mod.fresh()

    def delay(self, attempt: int) -> float:
        raw = min(self.cap, self.base * self.multiplier ** max(0, attempt))
        if not self.jitter:
            return raw
        return raw * (1.0 + self.jitter * (2.0 * self._rng.random() - 1.0))


@dataclass
class LinkStats:
    """Per-peer counters exposed by :meth:`TcpNode.link_stats`."""

    reconnects: int = 0  # successful re-establishments (first connect excluded)
    retransmissions: int = 0  # sliding-window data frames re-sent
    backlog: int = 0  # frames queued or unacknowledged right now
    overflow_dropped: int = 0  # frames degraded-dropped by bounded queues
    auth_failures: int = 0  # forged/garbled window datagrams on this link
    duplicates: int = 0  # replayed data frames suppressed by the receiver
    heartbeats: int = 0  # authenticated heartbeats accepted
    state: str = "alive"  # failure-detector classification


class _Outbox:
    """Bounded FIFO of wire frames for one peer (drop-oldest on overflow).

    Dropping is safe at this layer: ACKs and heartbeats are regenerated,
    and data datagrams are re-sent by the window's RTO retransmission.
    """

    def __init__(self, limit: int):
        self._items: Deque[bytes] = collections.deque()
        self._limit = limit
        self._ready = asyncio.Event()
        self.dropped = 0

    def put(self, item: bytes) -> None:
        if len(self._items) >= self._limit:
            self._items.popleft()
            self.dropped += 1
        self._items.append(item)
        self._ready.set()

    async def get(self) -> bytes:
        while not self._items:
            self._ready.clear()
            await self._ready.wait()
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)


class _PeerLink:
    """Everything one :class:`TcpNode` keeps per directed peer link."""

    def __init__(self, node: "TcpNode", peer: int):
        self.peer = peer
        self.auth = node.ctx.crypto.link_auth(peer)
        self.epoch = 0
        self.sender = SlidingWindowSender(
            self.auth,
            node._new_session(peer, 0),
            window=node.window,
            rto=node.rto,
            max_backlog=node.max_backlog,
        )
        self.outbox = _Outbox(node.outbox_limit)
        self.task: Optional[asyncio.Task] = None
        self.connected = False
        self.connects = 0
        # inbound direction: session announced by the peer's hello
        self.rx_session: Optional[bytes] = None
        self.receiver: Optional[SlidingWindowReceiver] = None
        self.hb_next = 0  # next heartbeat counter to send
        self.hb_seen = -1  # highest heartbeat counter accepted
        self.heartbeats_seen = 0
        self.poll_handle: Optional[asyncio.TimerHandle] = None
        self.poll_when: Optional[float] = None


class TcpContext(Context):
    """Protocol context bound to a :class:`TcpNode`."""

    def __init__(self, node: "TcpNode"):
        self.node_id = node.index
        self.n = node.group.n
        self.t = node.group.t
        self.crypto = node.group.party(node.index)
        self.obs = node.obs
        self.router = Router(recorder=node.obs)
        self._node = node

    def send(self, dst: int, pid: str, mtype: str, payload: Any) -> None:
        body = pack_body(pid, mtype, payload)
        frame = links.seal(self.crypto, dst, body)
        self._node.send_frame(dst, frame)

    def effect(self, fn: Callable, *args: Any) -> None:
        asyncio.get_running_loop().call_soon(fn, *args)

    def defer(self, fn: Callable[[], None]) -> None:
        asyncio.get_running_loop().call_soon(fn)

    def set_timer(self, delay: float, fn: Callable[[], None]):
        from repro.core.protocol import Timer

        timer = Timer()
        node = self._node

        def fire() -> None:
            node._timers.discard(handle)
            if timer.active:
                fn()

        handle = asyncio.get_running_loop().call_later(delay, fire)
        node._timers.add(handle)
        return timer

    def new_queue(self) -> AsyncQueue:
        return AsyncQueue()

    def new_future(self) -> AsyncFuture:
        return AsyncFuture()

    def now(self) -> float:
        return asyncio.get_running_loop().time()


class TcpNode:
    """One SINTRA server on a real TCP network, with supervised links.

    ``endpoints`` is the full group's advertised address list (what this
    node *dials*); ``listen_endpoint`` overrides where this node itself
    binds, for deployments (or chaos proxies) where the advertised address
    differs from the local one.  ``connect_retry_s`` is the backoff base
    delay, kept under its historical name.
    """

    def __init__(
        self,
        group: GroupConfig,
        index: int,
        endpoints: List[Tuple[str, int]],
        connect_retry_s: float = 0.05,
        *,
        seed: Optional[object] = None,
        listen_endpoint: Optional[Tuple[str, int]] = None,
        window: int = 64,
        rto: float = 0.25,
        backoff_cap: float = 2.0,
        heartbeat_s: float = 0.5,
        suspect_after: float = 2.0,
        down_after: float = 6.0,
        max_backlog: int = 4096,
        outbox_limit: int = 8192,
        recorder: Optional[Recorder] = None,
    ):
        if len(endpoints) != group.n:
            raise TransportError("need one endpoint per party")
        self.group = group
        self.index = index
        self.endpoints = endpoints
        self.listen_endpoint = listen_endpoint or endpoints[index]
        self.connect_retry_s = connect_retry_s
        self.seed = seed
        self.window = window
        self.rto = rto
        self.backoff_cap = backoff_cap
        self.heartbeat_s = heartbeat_s
        self.suspect_after = suspect_after
        self.down_after = down_after
        self.max_backlog = max_backlog
        self.outbox_limit = outbox_limit
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.ctx = TcpContext(self)
        self.failure_detector: Optional[FailureDetector] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._links: Dict[int, _PeerLink] = {}
        self._tasks: List[asyncio.Task] = []
        self._timers: Set[asyncio.TimerHandle] = set()
        self._incoming: Set[asyncio.StreamWriter] = set()
        self.frames_received = 0
        self.auth_failures = 0

    # -- seeded material ---------------------------------------------------------

    def _new_session(self, peer: int, epoch: int) -> bytes:
        if self.seed is not None:
            r = rng_mod.derive(self.seed, "tcp-session", self.index, peer, epoch)
        else:
            r = rng_mod.fresh()
        return r.randbytes(SESSION_BYTES)

    def _backoff(self, peer: int) -> BackoffPolicy:
        if self.seed is not None:
            r = rng_mod.derive(self.seed, "tcp-backoff", self.index, peer)
        else:
            r = rng_mod.fresh()
        return BackoffPolicy(base=self.connect_retry_s, cap=self.backoff_cap, rng=r)

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        """Listen on the local endpoint and supervise one link per peer."""
        loop = asyncio.get_running_loop()
        if self.obs.enabled:
            # Wall-clock runtime: durations come from the event loop clock.
            self.obs.bind_clock(loop.time)
        peers = [p for p in range(self.group.n) if p != self.index]
        self.failure_detector = FailureDetector(
            peers,
            self.suspect_after,
            self.down_after,
            now=loop.time(),
            recorder=self.obs,
        )
        # Event-driven mirror of the per-peer classification: the gauge
        # updates on every observed transition, so consumers (and BENCH
        # exports) never need to poll peer_states() for edge detection.
        self.failure_detector.on_transition(self._on_fd_transition)
        host, port = self.listen_endpoint
        self._server = await asyncio.start_server(self._on_peer, host, port)
        for peer in peers:
            link = _PeerLink(self, peer)
            self._links[peer] = link
            link.task = asyncio.ensure_future(self._supervise(peer))
            self._tasks.append(link.task)
        self._tasks.append(asyncio.ensure_future(self._heartbeat_loop()))

    async def stop(self) -> None:
        for handle in list(self._timers):
            handle.cancel()
        self._timers.clear()
        for link in self._links.values():
            if link.poll_handle is not None:
                link.poll_handle.cancel()
                link.poll_handle = None
        for task in self._tasks:
            task.cancel()
        results = await asyncio.gather(*self._tasks, return_exceptions=True)
        for task, result in zip(self._tasks, results):
            # CancelledError is the expected outcome; anything else is a
            # real supervisor/heartbeat failure worth surfacing.
            if isinstance(result, Exception):
                logger.warning("task %r failed during stop: %r", task, result)
        for writer in list(self._incoming):
            writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- sending ----------------------------------------------------------------

    def send_frame(self, dst: int, frame: bytes) -> None:
        if self.obs.enabled:
            self.obs.count("tcp.frames_sent")
            self.obs.count("tcp.bytes_sent", len(frame))
        if dst == self.index:
            # Local loop: deliver asynchronously like any other message.
            asyncio.get_running_loop().call_soon(self._deliver, frame)
            return
        link = self._links[dst]
        now = asyncio.get_running_loop().time()
        for datagram in link.sender.send(frame, now):
            link.outbox.put(datagram)
        self._schedule_poll(dst)

    def _framed(self, frame: bytes) -> bytes:
        return _LEN.pack(len(frame)) + frame

    def _hello_frame(self, peer: int) -> bytes:
        link = self._links[peer]
        session = link.sender.session
        tag = link.auth.tag(encode((KIND_HELLO, self.index, session)))
        return encode((KIND_HELLO, self.index, session, tag))

    async def _supervise(self, peer: int) -> None:
        """Connection supervisor: dial, hand over the outbox, re-dial forever."""
        host, port = self.endpoints[peer]
        link = self._links[peer]
        backoff = self._backoff(peer)
        attempt = 0
        pending: Optional[bytes] = None  # frame being written when the link died
        while True:
            try:
                _, writer = await asyncio.open_connection(host, port)
            except OSError:
                await asyncio.sleep(backoff.delay(attempt))
                attempt += 1
                continue
            attempt = 0
            link.connects += 1
            link.connected = True
            try:
                # Announce the session first, then retransmit whatever was
                # unacknowledged at disconnect (session resumption).
                writer.write(self._framed(self._hello_frame(peer)))
                if link.connects > 1 or link.outbox.dropped:
                    now = asyncio.get_running_loop().time()
                    for datagram in link.sender.resume(now):
                        link.outbox.put(datagram)
                    self._schedule_poll(peer)
                await writer.drain()
                while True:
                    frame = pending if pending is not None else await link.outbox.get()
                    pending = frame
                    writer.write(self._framed(frame))
                    await writer.drain()
                    pending = None
            except (ConnectionError, OSError):
                pass
            finally:
                link.connected = False
                writer.close()
            await asyncio.sleep(backoff.delay(attempt))
            attempt += 1

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.heartbeat_s)
            for peer, link in self._links.items():
                counter = link.hb_next
                link.hb_next += 1
                tag = link.auth.tag(encode((KIND_HEARTBEAT, self.index, counter)))
                link.outbox.put(encode((KIND_HEARTBEAT, self.index, counter, tag)))

    # -- retransmission timers ---------------------------------------------------

    def _schedule_poll(self, peer: int) -> None:
        link = self._links[peer]
        deadline = link.sender.next_timeout
        if deadline is None:
            return
        loop = asyncio.get_running_loop()
        if (
            link.poll_when is not None
            and link.poll_when <= deadline + 1e-9
            and link.poll_when > loop.time()
        ):
            return
        if link.poll_handle is not None:
            link.poll_handle.cancel()
        when = max(deadline, loop.time() + 1e-4)
        link.poll_when = when
        link.poll_handle = loop.call_later(when - loop.time(), self._poll, peer, when)

    def _poll(self, peer: int, when: float) -> None:
        link = self._links[peer]
        if link.poll_when == when:
            link.poll_handle = None
            link.poll_when = None
        loop = asyncio.get_running_loop()
        now = loop.time()
        if not link.connected:
            # No carrier: check again one RTO from now (the supervisor's
            # resume() covers the reconnect itself).
            when = now + self.rto
            link.poll_when = when
            link.poll_handle = loop.call_later(self.rto, self._poll, peer, when)
            return
        for datagram in link.sender.poll(now):
            link.outbox.put(datagram)
        self._schedule_poll(peer)

    # -- receiving -----------------------------------------------------------------

    async def _on_peer(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._incoming.add(writer)
        peer: Optional[int] = None  # bound by the first valid hello
        try:
            while True:
                header = await reader.readexactly(4)
                (length,) = _LEN.unpack(header)
                if length > MAX_FRAME:
                    raise TransportError("oversized frame")
                frame = await reader.readexactly(length)
                peer = self._handle_frame(peer, frame)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        except TransportError:
            # Malformed or unauthenticated framing: drop the connection so
            # the peer's supervisor re-dials with fresh, aligned framing
            # (a corrupted length prefix desynchronizes everything after).
            pass
        except asyncio.CancelledError:
            # Loop teardown: finish cleanly so asyncio's streams callback
            # does not log a spurious traceback for the handler task.
            pass
        finally:
            self._incoming.discard(writer)
            writer.close()

    def _handle_frame(self, bound: Optional[int], frame: bytes) -> int:
        """Dispatch one wire frame; returns the connection's peer binding."""
        try:
            fields = decode(frame)
        except EncodingError:
            self.auth_failures += 1
            raise TransportError("undecodable frame")
        if not isinstance(fields, tuple) or not fields:
            self.auth_failures += 1
            raise TransportError("malformed frame")
        kind = fields[0]
        now = asyncio.get_running_loop().time()

        if kind == KIND_HELLO and len(fields) == 4:
            _, sender, session, tag = fields
            if (
                not isinstance(sender, int)
                or not isinstance(session, bytes)
                or not isinstance(tag, bytes)
                or not 0 <= sender < self.group.n
                or sender == self.index
            ):
                self.auth_failures += 1
                raise TransportError("malformed hello")
            link = self._links[sender]
            if not link.auth.verify(encode((KIND_HELLO, sender, session)), tag):
                self.auth_failures += 1
                raise TransportError("unauthenticated hello")
            self._on_hello(sender, session, now)
            return sender

        if bound is None:
            self.auth_failures += 1
            raise TransportError("frame before hello")
        link = self._links[bound]

        if kind == KIND_DATA and len(fields) == 5:
            if link.receiver is not None:
                acks = link.receiver.on_data(fields)
                if acks:
                    for ack in acks:
                        link.outbox.put(ack)
                    self.failure_detector.touch(bound, now)
            return bound

        if kind == KIND_ACK and len(fields) == 4:
            forged_before = link.sender.forged_acks
            for datagram in link.sender.on_ack(fields, now):
                link.outbox.put(datagram)
            if link.sender.forged_acks == forged_before:
                self.failure_detector.touch(bound, now)
            self._schedule_poll(bound)
            return bound

        if kind == KIND_HEARTBEAT and len(fields) == 4:
            _, sender, counter, tag = fields
            if (
                sender != bound
                or not isinstance(counter, int)
                or not isinstance(tag, bytes)
                or not link.auth.verify(encode((KIND_HEARTBEAT, sender, counter)), tag)
            ):
                self.auth_failures += 1
                return bound
            if counter > link.hb_seen:  # replays keep nobody alive
                link.hb_seen = counter
                link.heartbeats_seen += 1
                self.failure_detector.touch(bound, now)
            return bound

        self.auth_failures += 1
        raise TransportError(f"unknown frame kind {kind!r}")

    def _on_hello(self, sender: int, session: bytes, now: float) -> None:
        link = self._links[sender]
        self.failure_detector.touch(sender, now)
        if link.rx_session == session:
            return  # resumed connection: receive state (dedup) is intact
        restarted = link.rx_session is not None
        link.rx_session = session
        link.receiver = SlidingWindowReceiver(link.auth, session, self._deliver)
        if restarted:
            # The peer instance restarted (its receive state is gone):
            # renumber our unacknowledged traffic under a fresh session,
            # announced before the renumbered data (the outbox is FIFO).
            link.epoch += 1
            datagrams = link.sender.rebind(
                self._new_session(sender, link.epoch), now
            )
            link.outbox.put(self._hello_frame(sender))
            for datagram in datagrams:
                link.outbox.put(datagram)
            self._schedule_poll(sender)

    def _deliver(self, frame: bytes) -> None:
        try:
            sender, body = links.open_sealed(self.ctx.crypto, frame)
            msg = unpack_body(sender, body)
        except (ReproError, TransportError):
            self.auth_failures += 1
            if self.obs.enabled:
                self.obs.count("tcp.auth_failures")
            return
        self.frames_received += 1
        if self.obs.enabled:
            self.obs.count("tcp.frames_received")
        self.ctx.router.dispatch(msg.sender, msg.pid, msg.mtype, msg.payload)

    # -- observability -----------------------------------------------------------

    def link_stats(self, peer: int) -> LinkStats:
        """Current counters for the directed link to/from ``peer``."""
        link = self._links[peer]
        receiver = link.receiver
        state = "alive"
        if self.failure_detector is not None:
            state = self.failure_detector.state(
                peer, asyncio.get_running_loop().time()
            )
        return LinkStats(
            reconnects=max(0, link.connects - 1),
            retransmissions=link.sender.retransmissions,
            backlog=link.sender.backlog_depth + len(link.outbox),
            overflow_dropped=link.sender.overflow_dropped + link.outbox.dropped,
            auth_failures=link.sender.forged_acks
            + (receiver.forged_data if receiver is not None else 0),
            duplicates=receiver.duplicates if receiver is not None else 0,
            heartbeats=link.heartbeats_seen,
            state=state,
        )

    def stats(self) -> Dict[str, Any]:
        """Aggregate counters plus the per-peer breakdown."""
        per_peer = {peer: self.link_stats(peer) for peer in sorted(self._links)}
        aggregate = {
            "frames_received": self.frames_received,
            "auth_failures": self.auth_failures,
            "reconnects": sum(s.reconnects for s in per_peer.values()),
            "retransmissions": sum(s.retransmissions for s in per_peer.values()),
            "backlog": sum(s.backlog for s in per_peer.values()),
            "overflow_dropped": sum(s.overflow_dropped for s in per_peer.values()),
            "peers": per_peer,
        }
        self.publish_obs(per_peer)
        return aggregate

    def publish_obs(self, per_peer: Optional[Dict[int, LinkStats]] = None) -> None:
        """Mirror the link/failure-detector counters into the recorder.

        Gauges are named ``tcp.link.<field>`` (aggregated across peers) and
        ``tcp.peer.<peer>.state`` so the TCP runtime's health shows up in
        the same registry (and BENCH export) as the protocol metrics.
        """
        if not self.obs.enabled:
            return
        if per_peer is None:
            per_peer = {peer: self.link_stats(peer) for peer in sorted(self._links)}
        stats = list(per_peer.values())
        self.obs.set_gauge("tcp.link.reconnects", sum(s.reconnects for s in stats))
        self.obs.set_gauge(
            "tcp.link.retransmissions", sum(s.retransmissions for s in stats)
        )
        self.obs.set_gauge("tcp.link.backlog", sum(s.backlog for s in stats))
        self.obs.set_gauge(
            "tcp.link.overflow_dropped", sum(s.overflow_dropped for s in stats)
        )
        self.obs.set_gauge(
            "tcp.link.auth_failures", sum(s.auth_failures for s in stats)
        )
        self.obs.set_gauge("tcp.link.duplicates", sum(s.duplicates for s in stats))
        self.obs.set_gauge("tcp.link.heartbeats", sum(s.heartbeats for s in stats))
        for peer, link_stats in per_peer.items():
            self.obs.set_gauge(f"tcp.peer.{peer}.state", link_stats.state)

    def _on_fd_transition(self, peer: int, old: str, new: str) -> None:
        if self.obs.enabled:
            self.obs.set_gauge(f"tcp.peer.{peer}.state", new)

    def peer_states(self) -> Dict[int, str]:
        """Failure-detector classification of every peer, right now.

        A point-in-time snapshot for reporting.  Do not poll this to
        *detect* state changes — register a callback with
        ``failure_detector.on_transition`` instead (pollers race the
        estimator and miss or double-count edges)."""
        if self.failure_detector is None:
            return {}
        states = self.failure_detector.states(asyncio.get_running_loop().time())
        if self.obs.enabled:
            for peer, state in states.items():
                self.obs.set_gauge(f"tcp.peer.{peer}.state", state)
        return states


def local_endpoints(
    n: int, base_port: Optional[int] = None
) -> List[Tuple[str, int]]:
    """Localhost endpoints for an in-process test deployment.

    Without ``base_port``, ephemeral ports are allocated by binding port 0
    and reading back the kernel's assignment — parallel test runs cannot
    collide on a fixed base.  All ``n`` sockets are held open until every
    port is known, so the same port is never handed out twice.
    """
    if base_port is not None:
        return [("127.0.0.1", base_port + i) for i in range(n)]
    sockets: List[socket.socket] = []
    endpoints: List[Tuple[str, int]] = []
    try:
        for _ in range(n):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
            endpoints.append(("127.0.0.1", sock.getsockname()[1]))
    finally:
        for sock in sockets:
            sock.close()
    return endpoints
