"""Network topology and latency models.

Reproduces the paper's three experimental setups (Sec. 4):

* a 100 Mbit/s switched-Ethernet LAN at the IBM Zurich lab,
* the four-site Internet testbed (Zurich, Tokyo, New York, California)
  whose average round-trip times are given in Figure 3, and
* the hybrid LAN+Internet configuration with seven hosts.

Figure 3 labels six RTT values (164, 230, 373, 285, 242 and 93 ms) on the
edges of the four-site graph.  The precise edge assignment is ambiguous in
the figure, so we assign them to match the paper's narrative — Tokyo is
"the most difficult to reach" while the transatlantic Zurich-New York link
is the fastest:

========================  ========
pair                      RTT (ms)
========================  ========
Zurich - New York            93
Zurich - California         164
Zurich - Tokyo              285
Tokyo - New York            230
New York - California       242
Tokyo - California          373
========================  ========

The paper reports that the measured RTTs vary by 10% or more; latency
samples are jittered accordingly (log-normal, seeded, deterministic).

Determinism: latency models never own an RNG — every :meth:`~LatencyModel.
sample` call receives the caller's stream (the runtime passes ``sim.rng``,
which is derived from the root seed).  Fault adversaries draw from a
separate derived stream (``SimRuntime.fault_rng``), so the base latency
schedule of a run is independent of the fault plan.
"""

from __future__ import annotations

import abc
import math
import random
from typing import Dict, Sequence, Tuple


#: TCP maximum segment size assumed by the slow-start model.
MSS = 1460

#: Initial congestion window of the era's Linux 2.2 kernels (segments).
INITIAL_CWND = 1


def tcp_flights(nbytes: int, mss: int = MSS, init_cwnd: int = INITIAL_CWND) -> int:
    """Number of one-way flights TCP slow start needs for ``nbytes``.

    The paper's point-to-point links are TCP streams (Sec. 3); in 2002 a
    multi-kilobyte message (threshold signatures, justification-carrying
    votes) spanning several segments pays extra round trips while the
    congestion window opens.  With window ``w`` doubling each flight,
    ``w + 2w + ... = (2^f - 1) w`` segments fit into ``f`` flights.
    """
    segments = max(1, -(-nbytes // mss))
    flights = 1
    capacity = init_cwnd
    window = init_cwnd
    while capacity < segments:
        window *= 2
        capacity += window
        flights += 1
    return flights


class LatencyModel(abc.ABC):
    """One-way message latency between two hosts, in seconds."""

    @abc.abstractmethod
    def mean_one_way(self, src: int, dst: int) -> float:
        """Mean one-way latency in seconds."""

    @abc.abstractmethod
    def bandwidth(self, src: int, dst: int) -> float:
        """Link bandwidth in bytes per second."""

    def tcp_modelled(self) -> bool:
        """Whether multi-segment messages pay slow-start round trips."""
        return False

    def sample(self, src: int, dst: int, rng: random.Random, nbytes: int = 0) -> float:
        """One jittered latency sample, including transmission time."""
        mean = self.mean_one_way(src, dst)
        jittered = mean * lognormal_jitter(rng, self.jitter_sigma())
        total = jittered + nbytes / self.bandwidth(src, dst)
        if self.tcp_modelled() and mean > 0:
            extra_flights = tcp_flights(nbytes) - 1
            if extra_flights:
                # each extra flight costs a round trip (2x one-way)
                total += extra_flights * 2 * mean * lognormal_jitter(
                    rng, self.jitter_sigma()
                )
        return total

    def jitter_sigma(self) -> float:
        return 0.1


def lognormal_jitter(rng: random.Random, sigma: float) -> float:
    """A multiplicative jitter factor with unit median."""
    return math.exp(rng.gauss(0.0, sigma))


class UniformLatency(LatencyModel):
    """Same mean latency between every pair — models a switched LAN."""

    def __init__(
        self,
        one_way_ms: float = 0.15,
        bandwidth_bytes_per_s: float = 100e6 / 8,
        jitter: float = 0.15,
    ):
        self.one_way_s = one_way_ms / 1000.0
        self._bandwidth = bandwidth_bytes_per_s
        self._jitter = jitter

    def mean_one_way(self, src: int, dst: int) -> float:
        return 0.0 if src == dst else self.one_way_s

    def bandwidth(self, src: int, dst: int) -> float:
        return self._bandwidth

    def jitter_sigma(self) -> float:
        return self._jitter


class MatrixLatency(LatencyModel):
    """Latency from a symmetric RTT matrix (milliseconds)."""

    def __init__(
        self,
        rtt_ms: Dict[Tuple[int, int], float],
        n: int,
        bandwidth_bytes_per_s: float = 10e6 / 8,
        jitter: float = 0.12,
        local_one_way_ms: float = 0.15,
    ):
        self.n = n
        self._rtt: Dict[Tuple[int, int], float] = {}
        for (a, b), v in rtt_ms.items():
            self._rtt[(a, b)] = v
            self._rtt[(b, a)] = v
        self._bandwidth = bandwidth_bytes_per_s
        self._jitter = jitter
        self._local_s = local_one_way_ms / 1000.0

    def tcp_modelled(self) -> bool:
        return True

    def mean_one_way(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        rtt = self._rtt.get((src, dst))
        if rtt is None:
            return self._local_s
        return rtt / 2000.0

    def rtt_ms(self, src: int, dst: int) -> float:
        """Mean round-trip time in milliseconds (0 for unknown/local pairs)."""
        if src == dst:
            return 0.0
        return self._rtt.get((src, dst), 2 * self._local_s * 1000.0)

    def bandwidth(self, src: int, dst: int) -> float:
        return self._bandwidth

    def jitter_sigma(self) -> float:
        return self._jitter


# --- The paper's Figure 3 testbed --------------------------------------------

ZURICH, TOKYO, NEW_YORK, CALIFORNIA = 0, 1, 2, 3

INTERNET_SITE_NAMES: Sequence[str] = ("Zurich", "Tokyo", "New York", "California")

#: Average round-trip times (ms) from Figure 3, assigned per module docstring.
FIG3_RTT_MS: Dict[Tuple[int, int], float] = {
    (ZURICH, NEW_YORK): 93.0,
    (ZURICH, CALIFORNIA): 164.0,
    (ZURICH, TOKYO): 285.0,
    (TOKYO, NEW_YORK): 230.0,
    (NEW_YORK, CALIFORNIA): 242.0,
    (TOKYO, CALIFORNIA): 373.0,
}


def lan_latency(jitter: float = 0.15) -> UniformLatency:
    """The paper's 100 Mbit/s switched-Ethernet LAN."""
    return UniformLatency(one_way_ms=0.15, bandwidth_bytes_per_s=100e6 / 8,
                          jitter=jitter)


def internet_latency(jitter: float = 0.12) -> MatrixLatency:
    """The paper's four-site Internet testbed (Figure 3)."""
    return MatrixLatency(FIG3_RTT_MS, n=4, bandwidth_bytes_per_s=10e6 / 8,
                         jitter=jitter)


def hybrid_latency(jitter: float = 0.12) -> MatrixLatency:
    """The 7-host LAN+Internet configuration (Sec. 4).

    Hosts 0..3 are the Zurich LAN machines (P0 Zurich doubles as the
    Internet host, as in the paper); hosts 4..6 are Tokyo, New York and
    California.  LAN pairs get LAN latency; pairs involving a remote site
    get the Figure 3 RTT of the corresponding sites.
    """
    rtt: Dict[Tuple[int, int], float] = {}
    lan_hosts = (0, 1, 2, 3)
    remote = {4: TOKYO, 5: NEW_YORK, 6: CALIFORNIA}
    for a in lan_hosts:
        for b in lan_hosts:
            if a < b:
                rtt[(a, b)] = 0.3  # LAN RTT in ms
    for r, site in remote.items():
        for a in lan_hosts:
            rtt[(a, r)] = FIG3_RTT_MS[tuple(sorted((ZURICH, site)))]  # type: ignore[index]
        for r2, site2 in remote.items():
            if r < r2:
                key = tuple(sorted((site, site2)))
                rtt[(r, r2)] = FIG3_RTT_MS[key]  # type: ignore[index]
    return MatrixLatency(rtt, n=7, bandwidth_bytes_per_s=10e6 / 8, jitter=jitter)
