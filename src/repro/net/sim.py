"""Discrete-event simulator for asynchronous networks.

The paper evaluates SINTRA on real machines spread over three continents;
this module is the substitute substrate (see DESIGN.md): a deterministic
discrete-event simulator with

* a virtual clock (seconds, float),
* generator-based *processes* (``yield`` a future, a queue ``get``, or a
  sleep duration),
* :class:`SimFuture` / :class:`SimQueue` synchronization primitives, and
* per-node sequential CPUs (:class:`SimNode`): handling a message occupies
  the node for a base overhead plus the modelled cost of the public-key
  operations performed by the handler, so a slow host really does fall
  behind — the effect behind Figures 4 and 5 of the paper.

Determinism: given the same seed and the same sequence of API calls, a
simulation run is bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.common import rng as rng_mod
from repro.common.errors import ReproError
from repro.crypto import opcount
from repro.obs.recorder import NULL as _NULL_RECORDER


class SimError(ReproError):
    """Simulator misuse (e.g. awaiting a future from a foreign simulator)."""


class SimFuture:
    """A one-shot value that a process can ``yield`` to wait on."""

    __slots__ = ("sim", "done", "value", "error", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.done = False
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self._callbacks: List[Callable[["SimFuture"], None]] = []

    def resolve(self, value: Any = None) -> None:
        """Resolve the future; waiting processes resume at the current time."""
        if self.done:
            raise SimError("future resolved twice")
        self.done = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim.schedule(0.0, cb, self)

    def reject(self, error: BaseException) -> None:
        """Fail the future; ``run_until`` re-raises the error."""
        if self.done:
            raise SimError("future resolved twice")
        self.done = True
        self.error = error
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.sim.schedule(0.0, cb, self)

    def add_done_callback(self, cb: Callable[["SimFuture"], None]) -> None:
        if self.done:
            self.sim.schedule(0.0, cb, self)
        else:
            self._callbacks.append(cb)


class SimQueue:
    """Unbounded FIFO queue connecting protocol outputs to processes."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._items: List[Any] = []
        self._waiters: List[SimFuture] = []

    def put(self, item: Any) -> None:
        if self._waiters:
            self._waiters.pop(0).resolve(item)
        else:
            self._items.append(item)

    def get(self) -> SimFuture:
        """Return a future for the next item (resolved now if available)."""
        fut = SimFuture(self.sim)
        if self._items:
            fut.resolve(self._items.pop(0))
        else:
            self._waiters.append(fut)
        return fut

    def __len__(self) -> int:
        return len(self._items)

    def can_get(self) -> bool:
        return bool(self._items)


class Process:
    """A generator-based process; its return value resolves ``future``."""

    def __init__(self, sim: "Simulator", gen: Generator):
        self.sim = sim
        self.gen = gen
        self.future = SimFuture(sim)
        sim.schedule(0.0, self._step, None)

    def _step(self, value: Any) -> None:
        if isinstance(value, SimFuture):
            if value.error is not None:
                # propagate awaited failures into the generator
                try:
                    yielded = self.gen.throw(value.error)
                except StopIteration as stop:
                    self.future.resolve(stop.value)
                    return
                except BaseException as exc:  # process died on the error
                    self.future.reject(exc)
                    return
                self._handle_yield(yielded)
                return
            value = value.value
        try:
            yielded = self.gen.send(value)
        except StopIteration as stop:
            self.future.resolve(stop.value)
            return
        except BaseException as exc:
            # a crashing process fails its own future instead of tearing
            # down the whole simulation's event loop
            self.future.reject(exc)
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if isinstance(yielded, SimFuture):
            yielded.add_done_callback(self._step)
        elif isinstance(yielded, (int, float)):
            self.sim.schedule(float(yielded), self._step, None)
        elif yielded is None:
            self.sim.schedule(0.0, self._step, None)
        else:
            raise SimError(
                f"process yielded unsupported value {yielded!r}; "
                "yield a SimFuture, a sleep duration, or None"
            )


class Simulator:
    """Event loop with a virtual clock."""

    def __init__(self, seed: object = 0):
        self.now = 0.0
        self.seed = seed
        self.rng = random.Random(repr(("repro.sim", seed)))
        self._heap: List[Tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self.events_processed = 0

    def derive(self, *labels: object) -> random.Random:
        """An independent RNG stream derived from this simulator's seed.

        Components that draw randomness (fault adversaries, fuzzers,
        mutators) take their own derived stream instead of sharing
        :attr:`rng`, so one component's draws never perturb another's —
        the property that makes shrunk fault schedules replayable.
        """
        return rng_mod.derive(self.seed, "sim", *labels)

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        self.schedule_at(self.now + max(0.0, delay), fn, *args)

    def schedule_at(self, when: float, fn: Callable, *args: Any) -> None:
        if when < self.now:
            raise SimError("cannot schedule in the past")
        heapq.heappush(self._heap, (when, self._seq, fn, args))
        self._seq += 1

    # -- processes --------------------------------------------------------------

    def spawn(self, gen: Generator) -> Process:
        """Start a generator-based process; see module docstring."""
        return Process(self, gen)

    def future(self) -> SimFuture:
        return SimFuture(self)

    def queue(self) -> SimQueue:
        return SimQueue(self)

    # -- running ------------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events until the queue drains, ``until`` or ``max_events``."""
        count = 0
        while self._heap:
            when, _, fn, args = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = when
            fn(*args)
            self.events_processed += 1
            count += 1
            if max_events is not None and count >= max_events:
                return
        if until is not None:
            self.now = until

    def run_until(self, fut: SimFuture, limit: float = 1e9) -> Any:
        """Run until ``fut`` resolves; raises if the simulation goes idle
        first, the time limit passes, or the future was rejected."""
        while not fut.done:
            if not self._heap:
                raise SimError("simulation went idle before the future resolved")
            if self.now > limit:
                raise SimError(f"simulated time exceeded limit {limit}")
            when, _, fn, args = heapq.heappop(self._heap)
            self.now = when
            fn(*args)
            self.events_processed += 1
        if fut.error is not None:
            raise fut.error
        return fut.value

    @property
    def idle(self) -> bool:
        return not self._heap


class SimNode:
    """A sequential CPU in the simulated system.

    All work of one party executes here.  ``process(fn)`` runs ``fn``
    immediately (collecting its outbound messages and local outputs) but
    models its *duration*: the node is busy from ``max(now, busy_until)``
    for ``overhead + crypto cost`` seconds, and everything the handler
    produced takes effect at the completion time.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        cost_model: Optional[object] = None,
        overhead_s: float = 0.0,
        op_scale: float = 1.0,
        recorder: Optional[object] = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.cost_model = cost_model
        self.overhead_s = overhead_s
        self.op_scale = op_scale
        self.obs = recorder if recorder is not None else _NULL_RECORDER
        self.busy_until = 0.0
        self.cpu_seconds = 0.0
        self._outbox: Optional[List[Tuple[Any, ...]]] = None
        self._effects: Optional[List[Tuple[Callable, tuple]]] = None

    # -- called from inside handlers -------------------------------------------

    def emit(self, *send_tuple: Any) -> None:
        """Record an outbound message (interpreted by the network layer)."""
        if self._outbox is None:
            raise SimError("emit() outside of node.process()")
        self._outbox.append(send_tuple)

    def effect(self, fn: Callable, *args: Any) -> None:
        """Record a local effect to apply at handler completion time."""
        if self._effects is None:
            raise SimError("effect() outside of node.process()")
        self._effects.append((fn, args))

    # -- execution ---------------------------------------------------------------

    def process(
        self,
        fn: Callable[[], None],
        dispatch: Optional[Callable[[int, float, Tuple[Any, ...]], None]] = None,
    ) -> float:
        """Execute ``fn`` as one unit of work on this CPU.

        ``dispatch(node_id, completion_time, send_tuple)`` is invoked for
        every message the handler emitted.  Returns the completion time.
        """
        start = max(self.sim.now, self.busy_until)
        outer_outbox, outer_effects = self._outbox, self._effects
        self._outbox, self._effects = [], []
        counter = opcount.OpCounter()
        opcount.push(counter)
        try:
            fn()
        finally:
            opcount.pop()
            outbox, self._outbox = self._outbox, outer_outbox
            effects, self._effects = self._effects, outer_effects
        duration = self.overhead_s
        if self.cost_model is not None:
            if self.obs.enabled:
                duration += self.cost_model.charge(self.obs, counter, self.op_scale)
            else:
                duration += self.cost_model.seconds(counter, self.op_scale)
        elif self.obs.enabled:
            opcount.charge(self.obs, counter)
        if self.obs.enabled:
            self.obs.observe("cpu.handler_s", duration)
        end = start + duration
        self.busy_until = end
        self.cpu_seconds += duration
        for fn2, args in effects:
            self.sim.schedule_at(end, fn2, *args)
        if dispatch is not None:
            for send_tuple in outbox:
                dispatch(self.node_id, end, send_tuple)
        elif outbox:
            raise SimError("handler emitted messages but no dispatcher was given")
        return end
