"""A lossy-datagram deployment: the protocol stack over sliding-window links.

The default simulator models the paper's TCP links as reliable FIFO pipes.
This runtime instead models an *unreliable datagram* network — independent
loss and duplication per datagram — and runs
:mod:`repro.net.sliding_window` underneath the protocol stack, i.e. the
configuration the paper planned ("replace TCP by SINTRA's own
sliding-window implementation").  The SINTRA protocols themselves are
untouched: they still see reliable FIFO authenticated links.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.net.runtime import SimRuntime
from repro.net.sliding_window import SlidingWindowEndpoint


class LossyLinkRuntime(SimRuntime):
    """A :class:`SimRuntime` whose links are sliding-window over loss.

    ``loss`` and ``duplicate`` are per-datagram probabilities; ``rto`` is
    the links' retransmission timeout in (simulated) seconds.
    """

    def __init__(
        self,
        *args,
        loss: float = 0.05,
        duplicate: float = 0.0,
        rto: float = 0.3,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.loss = loss
        self.duplicate = duplicate
        self.rto = rto
        #: directed pair -> (sending endpoint at src, receiving at dst)
        self._links: Dict[Tuple[int, int], Tuple[SlidingWindowEndpoint, SlidingWindowEndpoint]] = {}
        self._poll_scheduled: Dict[Tuple[int, int], float] = {}
        self.datagrams_sent = 0
        self.datagrams_lost = 0

    # -- link construction ---------------------------------------------------------

    def _link(self, src: int, dst: int):
        key = (src, dst)
        if key not in self._links:
            session = b"link-%d-%d" % (src, dst)
            auth = self.group.party(src).link_auth(dst)

            tx = SlidingWindowEndpoint(
                auth, session,
                transmit=lambda d, k=key: self._datagram(k[0], k[1], d),
                deliver=lambda p: None,
                rto=self.rto,
            )
            rx = SlidingWindowEndpoint(
                auth, session,
                transmit=lambda d, k=key: self._datagram(k[1], k[0], d),
                deliver=lambda frame, d=dst: self._frame_delivered(d, frame),
                rto=self.rto,
            )
            self._links[key] = (tx, rx)
        return self._links[key]

    # -- frame path ---------------------------------------------------------------------

    def _dispatch(self, src: int, depart: float, send_tuple) -> None:
        dst, wire = send_tuple
        if self.faults.drops(src, depart):
            return
        self.messages_sent += 1
        self.bytes_sent += len(wire)
        if dst == src:
            self.sim.schedule_at(depart, self._arrive, dst, wire)
            return
        tx, _ = self._link(src, dst)
        self.sim.schedule_at(depart, self._link_send, src, dst, tx, wire)

    def _link_send(self, src: int, dst: int, tx: SlidingWindowEndpoint, wire: bytes) -> None:
        tx.send(wire, self.sim.now)
        self._schedule_poll(src, dst)

    def _frame_delivered(self, dst: int, frame: bytes) -> None:
        self.nodes[dst].process(
            lambda: self._handle_wire(dst, frame), self._dispatch
        )

    # -- the unreliable datagram service -----------------------------------------------------

    def _datagram(self, src: int, dst: int, datagram: bytes) -> None:
        """Transmit one datagram with loss/duplication and latency."""
        self.datagrams_sent += 1
        copies = 2 if self.sim.rng.random() < self.duplicate else 1
        for _ in range(copies):
            if self.sim.rng.random() < self.loss:
                self.datagrams_lost += 1
                continue
            delay = self.latency.sample(src, dst, self.sim.rng, nbytes=len(datagram))
            delay += self.faults.extra_delay(
                src, dst, len(datagram), self.sim.now, self.sim.rng
            )
            self.sim.schedule(delay, self._datagram_arrive, src, dst, datagram)

    def _datagram_arrive(self, src: int, dst: int, datagram: bytes) -> None:
        # Data datagrams land at the receiving endpoint of (src, dst);
        # ACK datagrams land at the sending endpoint.  Both endpoints
        # ignore frames that are not theirs, so dispatch to both is safe,
        # but we can route exactly by direction:
        tx_fwd = self._links.get((src, dst))
        tx_rev = self._links.get((dst, src))
        if tx_fwd is not None:
            tx_fwd[1].on_datagram(datagram, self.sim.now)  # data for dst
        if tx_rev is not None:
            tx_rev[0].on_datagram(datagram, self.sim.now)  # ACKs for dst's sender
        self._schedule_poll(dst, src)
        self._schedule_poll(src, dst)

    # -- retransmission timers ----------------------------------------------------------------

    def _schedule_poll(self, src: int, dst: int) -> None:
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            return
        deadline = link[0].sender.next_timeout
        if deadline is None:
            return
        pending = self._poll_scheduled.get(key)
        if pending is not None and pending <= deadline + 1e-9 and pending > self.sim.now:
            return
        # never schedule at the current instant: a zero-delay reschedule
        # loop would freeze simulated time
        when = max(deadline, self.sim.now + 1e-6)
        self._poll_scheduled[key] = when
        self.sim.schedule_at(when, self._poll, src, dst, when)

    def _poll(self, src: int, dst: int, when: float) -> None:
        key = (src, dst)
        if self._poll_scheduled.get(key) == when:
            self._poll_scheduled.pop(key, None)
        link = self._links.get(key)
        if link is None:
            return
        link[0].poll(self.sim.now)
        self._schedule_poll(src, dst)
