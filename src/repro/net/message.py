"""Wire message format.

A protocol message is ``(pid, mtype, payload)``: the protocol-instance
identifier that every SINTRA protocol carries (paper Sec. 2), a short
message-type string (e.g. ``"echo"``, ``"pre-vote"``), and an arbitrary
canonically-encodable payload.  The sender identity is *not* part of the
body — it is established by the authenticated link layer
(:mod:`repro.net.links`), exactly as in the paper where point-to-point
links are HMAC-authenticated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.encoding import decode, encode
from repro.common.errors import EncodingError, TransportError


@dataclass(frozen=True)
class Message:
    """A received protocol message with its authenticated sender."""

    sender: int
    pid: str
    mtype: str
    payload: Any


def pack_body(pid: str, mtype: str, payload: Any) -> bytes:
    """Serialize a protocol message body."""
    return encode((pid, mtype, payload))


def unpack_body(sender: int, data: bytes) -> Message:
    """Parse a message body received from ``sender``."""
    try:
        pid, mtype, payload = decode(data)
    except (EncodingError, ValueError, TypeError) as exc:
        raise TransportError("malformed message body") from exc
    if not isinstance(pid, str) or not isinstance(mtype, str):
        raise TransportError("malformed message header")
    return Message(sender=sender, pid=pid, mtype=mtype, payload=payload)
