"""Abstract transport interface.

A transport moves sealed wire frames (see :mod:`repro.net.links`) between
parties.  Two implementations exist: the discrete-event simulator
(:mod:`repro.net.runtime`) and real TCP via asyncio
(:mod:`repro.net.tcp`) — the paper's prototype likewise ran the reliable
point-to-point links over TCP streams (Sec. 3).
"""

from __future__ import annotations

import abc
from typing import Callable


class Transport(abc.ABC):
    """Reliable FIFO delivery of opaque frames between parties."""

    @abc.abstractmethod
    def send(self, dst: int, frame: bytes) -> None:
        """Queue ``frame`` for delivery to party ``dst`` (non-blocking)."""

    @abc.abstractmethod
    def set_receiver(self, callback: Callable[[bytes], None]) -> None:
        """Register the local delivery callback for incoming frames."""
