"""Per-peer liveness estimation for the real-network runtime.

SINTRA's asynchronous protocols never *need* a failure detector for
safety — that is the point of the randomized protocol stack — but an
operator of a real deployment does: the runtime must report which peers
are reachable, degrade bounded resources for unresponsive ones, and give
reconnection supervision a signal to expose.  This module is the sans-I/O
core: a clock-driven state estimator fed by *progress events* (a verified
heartbeat, a delivered frame, an authenticated acknowledgment) that
classifies every peer as ``alive``, ``suspect`` or ``down``.

The estimator is deliberately crude (fixed timeouts, no adaptive RTT
estimation a la Chen/Toueg): under asynchrony any detector is unreliable,
and nothing in the protocol stack trusts it.  It only drives reporting
and degradation policy in :mod:`repro.net.tcp`.

State machine (ages are ``now - last_progress``)::

    ALIVE --(age >= suspect_after)--> SUSPECT --(age >= down_after)--> DOWN
      ^                                  |                              |
      +-------- progress event ----------+------------------------------+

Progress events always restore ``alive``; the transitions are therefore a
pure function of the last-progress timestamp, which keeps the detector
trivially checkable in unit tests with a synthetic clock.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.common.errors import ConfigError
from repro.obs.recorder import NULL as NULL_RECORDER
from repro.obs.recorder import Recorder

ALIVE = "alive"
SUSPECT = "suspect"
DOWN = "down"


class FailureDetector:
    """Progress-driven ``alive / suspect / down`` classification.

    ``suspect_after`` and ``down_after`` are seconds of silence; the clock
    is whatever the caller passes as ``now`` (the asyncio loop clock under
    :class:`~repro.net.tcp.TcpNode`, a synthetic float in tests).

    When a ``recorder`` is given, suspicion *transitions* are surfaced as
    counters — ``fd.suspect.entered`` / ``fd.suspect.cleared`` (and
    ``fd.down.entered`` for the terminal step) — so exported BENCH records
    show how often and how fast silence was detected.  States are a pure
    function of the last-progress timestamps, so transitions are noted at
    observation time: whenever :meth:`state`, :meth:`states` or
    :meth:`touch` recomputes a peer's classification.

    Consumers that need to *react* to a classification change register a
    callback with :meth:`on_transition` and receive ``(peer, old, new)``
    the first time the change is observed.  This is the supported signal
    path for degradation policy and the recovery orchestrator
    (:mod:`repro.heal`); polling :meth:`states` (or the TCP runtime's
    ``peer_states()`` mirror) for edge detection is deprecated — pollers
    race the estimator and double-count transitions.
    """

    def __init__(
        self,
        peers: Iterable[int],
        suspect_after: float = 2.0,
        down_after: float = 6.0,
        now: float = 0.0,
        recorder: Optional[Recorder] = None,
    ):
        if suspect_after <= 0 or down_after <= suspect_after:
            raise ConfigError("need 0 < suspect_after < down_after")
        self.suspect_after = suspect_after
        self.down_after = down_after
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self._last: Dict[int, float] = {peer: now for peer in peers}
        self._noted: Dict[int, str] = {peer: ALIVE for peer in self._last}
        self._listeners: List[Callable[[int, str, str], None]] = []

    @property
    def peers(self) -> List[int]:
        return sorted(self._last)

    def on_transition(self, callback: Callable[[int, str, str], None]) -> None:
        """Register ``callback(peer, old, new)`` for state transitions.

        Invoked the first time a classification change is observed (the
        same edge the ``fd.*`` counters record), in registration order.
        Callbacks run inline with whatever call noticed the edge
        (:meth:`touch`, :meth:`state`, :meth:`states`), so they must be
        cheap and must not re-enter the detector.
        """
        self._listeners.append(callback)

    def add_peer(self, peer: int, now: float) -> None:
        """Start estimating a peer that joined after construction (e.g. a
        replacement replica onboarded mid-run).  No-op if already known."""
        if peer in self._last:
            return
        self._last[peer] = now
        self._noted[peer] = ALIVE

    def touch(self, peer: int, now: float) -> None:
        """Record a progress event from ``peer`` (monotone: never rewinds)."""
        if peer not in self._last:
            raise ConfigError(f"unknown peer {peer}")
        if now > self._last[peer]:
            self._last[peer] = now
        self._note(peer, self.state(peer, now))

    def last_progress(self, peer: int) -> float:
        return self._last[peer]

    def state(self, peer: int, now: float) -> str:
        age = now - self._last[peer]
        if age >= self.down_after:
            state = DOWN
        elif age >= self.suspect_after:
            state = SUSPECT
        else:
            state = ALIVE
        self._note(peer, state)
        return state

    def _note(self, peer: int, state: str) -> None:
        """Count a suspicion transition the first time it is observed."""
        previous = self._noted[peer]
        if state == previous:
            return
        self._noted[peer] = state
        if self.obs.enabled:
            if previous == ALIVE and state in (SUSPECT, DOWN):
                self.obs.count("fd.suspect.entered")
            if state == DOWN:
                self.obs.count("fd.down.entered")
            if state == ALIVE:
                self.obs.count("fd.suspect.cleared")
        for callback in self._listeners:
            callback(peer, previous, state)

    def states(self, now: float) -> Dict[int, str]:
        return {peer: self.state(peer, now) for peer in self._last}

    def alive(self, now: float) -> List[int]:
        """Peers currently classified ``alive``, sorted."""
        return [p for p in self.peers if self.state(p, now) == ALIVE]

    def next_transition(self, now: float) -> Optional[float]:
        """Earliest future time at which some peer's state can worsen.

        ``None`` when every peer is already ``down``; used by pollers to
        sleep exactly until the next possible state change.
        """
        deadlines = []
        for peer, last in self._last.items():
            age = now - last
            if age < self.suspect_after:
                deadlines.append(last + self.suspect_after)
            elif age < self.down_after:
                deadlines.append(last + self.down_after)
        return min(deadlines) if deadlines else None
