"""Simulation runtime: wires parties, protocols and the network together.

:class:`SimRuntime` owns one :class:`~repro.net.sim.Simulator`, one
:class:`~repro.net.sim.SimNode` (sequential CPU) and one
:class:`~repro.core.protocol.Router` per party, and a simulated network
that transports sealed wire frames with topology-dependent latency,
per-pair FIFO ordering, bandwidth-dependent transmission time, and the
configured fault plan.

Usage sketch::

    group = fast_group(4, 1)
    rt = SimRuntime(group, latency=lan_latency(), hosts=LAN_HOSTS, seed=1)
    rbc = [ReliableBroadcast(ctx, "rbc", 0) for ctx in rt.contexts]
    rbc[0].send(b"hello")
    rt.run_all([r.delivered for r in rbc])
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ReproError, TransportError
from repro.core.protocol import Context, Router
from repro.crypto.dealer import GroupConfig
from repro.net import links
from repro.net.costmodel import CostModel, HostSpec
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel, UniformLatency
from repro.net.message import pack_body, unpack_body
from repro.net.sim import SimFuture, SimNode, SimQueue, Simulator
from repro.obs.recorder import NULL as NULL_RECORDER
from repro.obs.recorder import Recorder

#: Default per-message handling overhead (seconds) when a host spec does not
#: provide one; covers serialization, MAC and bookkeeping.
DEFAULT_OVERHEAD_S = 0.002


class SimContext(Context):
    """The :class:`Context` implementation backed by the simulator."""

    def __init__(self, runtime: "SimRuntime", node_id: int):
        self.runtime = runtime
        self.node_id = node_id
        self.n = runtime.group.n
        self.t = runtime.group.t
        self.crypto = runtime.group.party(node_id)
        self.router = runtime.routers[node_id]
        self.node = runtime.nodes[node_id]
        self.obs = runtime.obs

    # -- messaging ------------------------------------------------------------

    def send(self, dst: int, pid: str, mtype: str, payload: Any) -> None:
        body = pack_body(pid, mtype, payload)
        wire = links.seal(self.crypto, dst, body)
        self.runtime.record_protocol_message(pid, mtype, len(wire), self.node_id)
        self.node.emit(dst, wire)

    # -- effects / scheduling ---------------------------------------------------

    def effect(self, fn: Callable, *args: Any) -> None:
        if self.node._effects is not None:  # inside a handler on this CPU
            self.node.effect(fn, *args)
        else:  # API-driven (e.g. deliver_closing from application code)
            self.runtime.sim.schedule(0.0, fn, *args)

    def defer(self, fn: Callable[[], None]) -> None:
        if self.node._outbox is not None:  # inside a handler on this CPU
            self.node.effect(self.runtime.run_on_node, self.node_id, fn)
        else:
            self.runtime.sim.schedule(
                0.0, self.runtime.run_on_node, self.node_id, fn
            )

    def api(self, fn: Callable[[], None]) -> None:
        if self.node._outbox is not None:  # already executing on this CPU
            fn()
        else:
            self.runtime.sim.schedule(
                0.0, self.runtime.run_on_node, self.node_id, fn
            )

    def set_timer(self, delay: float, fn: Callable[[], None]):
        from repro.core.protocol import Timer

        timer = Timer()

        def fire() -> None:
            if timer.active:
                self.runtime.run_on_node(self.node_id, fn)

        self.runtime.sim.schedule(delay, fire)
        return timer

    # -- primitives ----------------------------------------------------------------

    def new_queue(self) -> SimQueue:
        return self.runtime.sim.queue()

    def new_future(self) -> SimFuture:
        return self.runtime.sim.future()

    def now(self) -> float:
        return self.runtime.sim.now


class SimRuntime:
    """A complete simulated deployment of one SINTRA group."""

    def __init__(
        self,
        group: GroupConfig,
        latency: Optional[LatencyModel] = None,
        hosts: Optional[Sequence[HostSpec]] = None,
        seed: object = 0,
        faults: Optional[FaultPlan] = None,
        overhead_s: Optional[float] = None,
        model_crypto_cost: bool = True,
        trace: bool = False,
        recorder: Optional[Recorder] = None,
    ):
        self.group = group
        self.latency = latency or UniformLatency()
        self.sim = Simulator(seed=seed)
        self.faults = faults or FaultPlan()
        #: observability recorder shared by all parties; spans and phase
        #: durations are measured on the *simulated* clock, so a recorded
        #: run is exactly as deterministic as an unrecorded one.
        self.obs = recorder if recorder is not None else NULL_RECORDER
        if recorder is not None:
            recorder.bind_clock(lambda: self.sim.now)
        n = group.n
        if hosts is not None and len(hosts) < n:
            raise ReproError(f"need at least {n} host specs, got {len(hosts)}")
        op_scale = group.security.nominal_bits / group.security.sig_modbits
        self.nodes: List[SimNode] = []
        for i in range(n):
            host = hosts[i] if hosts is not None else None
            cost_model = CostModel(host) if (host and model_crypto_cost) else None
            node_overhead = (
                overhead_s
                if overhead_s is not None
                else (host.overhead_ms / 1000.0 if host else DEFAULT_OVERHEAD_S)
            )
            self.nodes.append(
                SimNode(
                    self.sim,
                    i,
                    cost_model=cost_model,
                    overhead_s=node_overhead,
                    op_scale=op_scale,
                    recorder=self.obs,
                )
            )
        self.routers = [Router(recorder=self.obs) for _ in range(n)]
        self.contexts = [SimContext(self, i) for i in range(n)]
        #: dedicated RNG stream for the fault plan, derived from the root
        #: seed: fault draws never perturb latency sampling (which stays on
        #: ``sim.rng``), so removing a fault directive from a schedule
        #: leaves the rest of the run bit-identical — what makes shrunk
        #: fuzzer counterexamples replayable.
        self.fault_rng = self.sim.derive("faults")
        #: wire-level interceptors ``tap(src, dst, wire, depart)`` applied
        #: to every outbound frame after the crash filter: return ``None``
        #: to pass the frame through unchanged, or a list of
        #: ``(dst, wire)`` replacement deliveries (empty list = drop).
        #: This is the hook the Byzantine wire mutator plugs into.
        self.wire_taps: List[
            Callable[[int, int, bytes, float], Optional[List[Tuple[int, bytes]]]]
        ] = []
        #: callbacks ``cb(dst)`` invoked after every inbound frame has been
        #: handled at ``dst`` — the hook protocol invariant checkers use to
        #: re-evaluate after each delivery.
        self.delivery_listeners: List[Callable[[int], None]] = []
        self._fifo_last: Dict[Tuple[int, int], float] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.auth_failures = 0
        #: per-(pid, mtype) counts of protocol messages handed to the
        #: network — the data behind the message-complexity tests.
        self.protocol_messages: Dict[Tuple[str, str], int] = {}
        self.protocol_bytes: Dict[str, int] = {}
        #: optional full message trace: (time, sender, pid, mtype, nbytes).
        #: The per-delivery timelines of the paper's Figures 4/5 come from
        #: exactly this kind of log.
        self.trace: Optional[List[Tuple[float, int, str, str, int]]] = (
            [] if trace else None
        )

    def record_protocol_message(
        self, pid: str, mtype: str, nbytes: int, sender: int = -1
    ) -> None:
        key = (pid, mtype)
        self.protocol_messages[key] = self.protocol_messages.get(key, 0) + 1
        self.protocol_bytes[pid] = self.protocol_bytes.get(pid, 0) + nbytes
        if self.obs.enabled:
            self.obs.count("net.messages")
            self.obs.count("net.bytes", nbytes)
            self.obs.count(f"net.msg.{mtype}")
        if self.trace is not None:
            self.trace.append((self.sim.now, sender, pid, mtype, nbytes))

    def dump_trace(self, path: str) -> int:
        """Write the trace as JSON lines; returns the record count."""
        import json

        if self.trace is None:
            raise ReproError("runtime was created without trace=True")
        with open(path, "w") as f:
            for when, sender, pid, mtype, nbytes in self.trace:
                f.write(json.dumps({
                    "t": round(when, 6), "from": sender, "pid": pid,
                    "type": mtype, "bytes": nbytes,
                }) + "\n")
        return len(self.trace)

    def messages_for_prefix(self, prefix: str) -> int:
        """Total messages sent for protocol ids starting with ``prefix``."""
        return sum(
            count
            for (pid, _), count in self.protocol_messages.items()
            if pid.startswith(prefix)
        )

    # -- node execution ------------------------------------------------------------

    def run_on_node(self, node_id: int, fn: Callable[[], None]) -> None:
        """Execute ``fn`` as one unit of CPU work on ``node_id``."""
        self.nodes[node_id].process(fn, self._dispatch)

    # -- network -----------------------------------------------------------------------

    def _dispatch(self, src: int, depart: float, send_tuple: Tuple[Any, ...]) -> None:
        dst, wire = send_tuple
        if self.faults.drops(src, depart):
            return
        deliveries: List[Tuple[int, bytes]] = [(dst, wire)]
        for tap in self.wire_taps:
            rewritten: List[Tuple[int, bytes]] = []
            for d, w in deliveries:
                out = tap(src, d, w, depart)
                if out is None:
                    rewritten.append((d, w))
                else:
                    rewritten.extend(out)
            deliveries = rewritten
        for d, w in deliveries:
            self._transmit(src, d, w, depart)

    def _transmit(self, src: int, dst: int, wire: bytes, depart: float) -> None:
        self.messages_sent += 1
        self.bytes_sent += len(wire)
        if dst == src:
            arrival = depart
        else:
            # Wire sizes are scaled to the experiment's *nominal* key size:
            # signatures and key-dependent fields grow linearly with the
            # modulus, so a run executed with small actual keys still pays
            # transmission/TCP costs of the configuration it models.
            op_scale = self.group.security.nominal_bits / self.group.security.sig_modbits
            nbytes = int(len(wire) * op_scale)
            delay = self.latency.sample(src, dst, self.sim.rng, nbytes=nbytes)
            delay += self.faults.extra_delay(src, dst, nbytes, depart, self.fault_rng)
            arrival = depart + delay
            last = self._fifo_last.get((src, dst), 0.0)
            arrival = max(arrival, last + 1e-9)  # links are FIFO, like TCP
            self._fifo_last[(src, dst)] = arrival
        self.sim.schedule_at(arrival, self._arrive, dst, wire)

    def _arrive(self, dst: int, wire: bytes) -> None:
        self.nodes[dst].process(lambda: self._handle_wire(dst, wire), self._dispatch)

    def _handle_wire(self, dst: int, wire: bytes) -> None:
        crypto = self.group.party(dst)
        try:
            sender, body = links.open_sealed(crypto, wire)
            msg = unpack_body(sender, body)
        except (ReproError, TransportError):
            self.auth_failures += 1
            if self.obs.enabled:
                self.obs.count("net.auth_failures")
            return
        self.routers[dst].dispatch(msg.sender, msg.pid, msg.mtype, msg.payload)
        for cb in self.delivery_listeners:
            cb(dst)

    # -- driving the simulation -------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self.sim.run(until=until, max_events=max_events)

    def run_until(self, fut: SimFuture, limit: float = 1e9) -> Any:
        return self.sim.run_until(fut, limit=limit)

    def run_all(self, futures: Sequence[SimFuture], limit: float = 1e9) -> List[Any]:
        """Run until every future in ``futures`` resolves."""
        for fut in futures:
            self.run_until(fut, limit=limit)
        return [f.value for f in futures]

    def spawn(self, gen) -> Any:
        return self.sim.spawn(gen)

    @property
    def now(self) -> float:
        return self.sim.now

    def router_errors(self) -> List[Tuple[str, int, Exception]]:
        """All contained handler errors across parties (empty in honest runs)."""
        out: List[Tuple[str, int, Exception]] = []
        for router in self.routers:
            out.extend(router.errors)
        return out
