"""Multi-valued Byzantine agreement — "array agreement" (paper Secs. 2.4, 3.3).

Agreement on values from arbitrary domains with *external validity*: a
global predicate ``validator(value) -> bool`` known to every party
determines which proposals are acceptable, so the group can only decide a
value acceptable to honest parties.

The protocol of Cachin, Kursawe, Petzold and Shoup, built from verifiable
consistent broadcast and biased validated binary agreement:

1. every party VCBC-broadcasts its proposal; a party waits for ``n - t``
   delivered proposals satisfying the predicate, then enters the loop;
2. candidates ``P_a`` are taken in the order of a permutation ``Pi``
   (fixed, or derived from locally available common information — both
   variants the paper implements); for each candidate every party

   a. sends a *yes-vote* carrying the VCBC closing message if it has
      accepted ``P_a``'s proposal, a *no-vote* otherwise (a received
      yes-vote hands over the proposal, closing the VCBC);
   b. waits for ``n - t`` proper vote messages;
   c. runs a 1-biased validated binary agreement, proposing 1 iff it has
      ``P_a``'s proposal, with the closing message's threshold signature
      as the external proof;
   d. on decision 1 proceeds to deliver, otherwise moves to the next
      candidate;

3. a party missing the winning proposal obtains it from the validation
   data returned by the binary agreement.

The loop takes ``O(t)`` iterations in expectation and ``O(t n^2)``
messages, as stated in the paper.  All three candidate-order variants of
Sec. 2.4 are provided: fixed, randomized from local information (SINTRA
implements these two), and — as an extension beyond the prototype —
coin-selected via an extra threshold-coin exchange in the proposal stage
(the expected-constant-round guarantee additionally needs a
vote-commitment step, which neither SINTRA nor this reproduction adds).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.encoding import encode
from repro.common.errors import ProtocolError
from repro.core.agreement.base import Agreement
from repro.core.agreement.validated import ValidatedAgreement
from repro.core.broadcast.verifiable import (
    VerifiableConsistentBroadcast,
    parse_closing,
)
from repro.core.protocol import Context

MSG_VOTE = "vote"
MSG_ORDER_COIN = "ocoin"

ORDER_FIXED = "fixed"
ORDER_RANDOM = "random"
ORDER_COIN = "coin"

#: ``validator(value) -> bool`` — the global external-validity predicate.
ArrayValidator = Callable[[bytes], bool]


def _accept_all(value: bytes) -> bool:
    return True


def candidate_order(pid: str, n: int, order: str) -> Optional[List[int]]:
    """The candidate permutation ``Pi`` (common to all parties).

    The paper's three variants (Sec. 2.4):

    * ``fixed`` — the identity permutation;
    * ``random`` — derived from the protocol identifier, i.e. from
      information locally available to every party; balances load but
      offers no more security than a fixed order;
    * ``coin`` — chosen at random with the threshold coin-tossing scheme
      in an extra round of message exchanges during the proposal stage, so
      the order is unpredictable until t+1 parties engage.  (The paper
      notes this variant becomes expected-constant-round only when
      combined with an additional vote-commitment step, which SINTRA does
      not implement either.)  Returns ``None``: the permutation is only
      known once the coin is assembled.
    """
    if order == ORDER_FIXED:
        return list(range(n))
    if order == ORDER_RANDOM:
        return permutation_from_seed(encode(("mvba-order", pid)), n)
    if order == ORDER_COIN:
        return None
    raise ProtocolError(f"unknown candidate order {order!r}")


def permutation_from_seed(seed: bytes, n: int) -> List[int]:
    """A permutation of ``0..n-1`` derived deterministically from bytes."""
    rng = random.Random(seed)
    perm = list(range(n))
    rng.shuffle(perm)
    return perm


class ArrayAgreement(Agreement):
    """One instance of multi-valued Byzantine agreement.

    ``decide()`` resolves with ``(payload, closing)`` where ``closing`` is
    the winning proposal's VCBC closing message.
    """

    def __init__(
        self,
        ctx: Context,
        pid: str,
        validator: Optional[ArrayValidator] = None,
        order: str = ORDER_RANDOM,
    ):
        super().__init__(ctx, pid)
        self.validator: ArrayValidator = validator or _accept_all
        self.order_mode = order
        self.order = candidate_order(pid, ctx.n, order)
        self._vcbc: List[VerifiableConsistentBroadcast] = []
        for j in range(ctx.n):
            bc = VerifiableConsistentBroadcast(ctx, f"{pid}/vcbc", j)
            bc.on_deliver = self._on_proposal_delivered
            self._vcbc.append(bc)
        #: candidate -> (payload, closing) for predicate-valid proposals
        self._proposals: Dict[int, Tuple[bytes, bytes]] = {}
        #: candidate -> {sender: yes/no}
        self._votes: Dict[int, Dict[int, bool]] = {}
        self._iteration = -1  # index into the (cyclic) candidate sequence
        self._vba: Optional[ValidatedAgreement] = None
        self._vba_proposed = False
        self.rounds_used = 0  # candidate iterations consumed (for metrics)
        self._order_coin_shares: Dict[int, bytes] = {}
        self._early_votes: List[Tuple[int, Any]] = []

    # -- stage 1: proposals via VCBC ----------------------------------------------

    def propose(self, value: bytes, proof: Optional[bytes] = None) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise ProtocolError("array agreement negotiates byte strings")
        value = bytes(value)
        if not self.validator(value):
            raise ProtocolError("own proposal fails the validity predicate")
        super().propose(value, proof)

    def _start(self, value: bytes, proof: Optional[bytes]) -> None:
        self._vcbc[self.ctx.node_id].send(value)
        if self.order_mode == ORDER_COIN and self.order is None:
            # The extra exchange of the paper's third variant: release a
            # share of the ordering coin alongside the proposal stage.
            share = self.ctx.crypto.coin_holder.release(self._order_coin_name())
            self.send_all(MSG_ORDER_COIN, share)

    def _order_coin_name(self) -> bytes:
        return encode(("mvba-order-coin", self.pid))

    def _on_proposal_delivered(
        self, bc: VerifiableConsistentBroadcast, payload: bytes
    ) -> None:
        if self.halted:
            return
        j = bc.sender
        if j in self._proposals or not self.validator(payload):
            return
        self._proposals[j] = (payload, bc.get_closing())
        self._maybe_enter_loop()

    def _maybe_enter_loop(self) -> None:
        if (
            self._iteration < 0
            and self.order is not None
            and len(self._proposals) >= self.ctx.n - self.ctx.t
        ):
            self._next_candidate()

    # -- stage 2: the candidate loop --------------------------------------------------

    @property
    def _candidate(self) -> int:
        return self.order[self._iteration % self.ctx.n]

    def _next_candidate(self) -> None:
        self._iteration += 1
        self.rounds_used += 1
        a = self._candidate
        has = a in self._proposals
        closing = self._proposals[a][1] if has else None
        self.send_all(MSG_VOTE, (self._iteration, has, closing))
        validator = self._make_bin_validator(a)
        self._vba = ValidatedAgreement(
            self.ctx, f"{self.pid}/vba.{self._iteration}", validator, bias=1
        )
        self._vba.on_decide = self._on_vba_decided
        self._vba_proposed = False
        self._check_votes()

    def _make_bin_validator(self, a: int):
        vcbc_pid = f"{self.pid}/vcbc.{a}"

        def is_valid(value: int, proof: Optional[bytes]) -> bool:
            if value == 0:
                return True
            if proof is None:
                return False
            parsed = parse_closing(self.ctx.crypto, vcbc_pid, proof)
            if parsed is None:
                return False
            return self.validator(parsed[0])

        return is_valid

    # -- votes ---------------------------------------------------------------------------

    def on_message(self, sender: int, mtype: str, payload: Any) -> None:
        if self.halted:
            return
        if mtype == MSG_ORDER_COIN:
            self._on_order_coin(sender, payload)
            return
        if mtype != MSG_VOTE:
            return
        if self.order is None:
            # votes cannot be attributed to a candidate before the
            # ordering coin is assembled; keep them for replay
            self._early_votes.append((sender, payload))
            return
        iteration, has, closing = payload
        if not isinstance(iteration, int) or iteration < 0:
            return
        votes = self._votes.setdefault(iteration, {})
        if sender in votes:
            return
        a = self.order[iteration % self.ctx.n]
        if has:
            # A proper yes-vote hands over the proposal via its closing
            # message; an unverifiable yes-vote is improper and ignored.
            if not isinstance(closing, bytes):
                return
            if a not in self._proposals:
                if not self._vcbc[a].deliver_closing(closing):
                    return
                # deliver_closing triggers _on_proposal_delivered, which
                # records the proposal if the predicate accepts it.
                if a not in self._proposals:
                    return
            votes[sender] = True
        else:
            votes[sender] = False
        if iteration == self._iteration:
            self._check_votes()

    def _on_order_coin(self, sender: int, share: Any) -> None:
        if self.order is not None or not isinstance(share, bytes):
            return
        coin = self.ctx.crypto.coin
        name = self._order_coin_name()
        accel = self.ctx.crypto.accel
        if accel.defer_shares or accel.batch:
            self._order_coin_shares[sender + 1] = share
            if len(self._order_coin_shares) < coin.k:
                return
            valid, bad = accel.coin_quorum(coin, name, self._order_coin_shares)
            for index in bad:
                self._order_coin_shares.pop(index, None)
            if len(valid) < coin.k:
                return
        else:
            if not accel.coin_share_ok(coin, name, share):
                return
            self._order_coin_shares[sender + 1] = share
            valid = self._order_coin_shares
        if len(valid) >= coin.k:
            seed = coin.assemble_bytes(name, valid, 32)
            self.order = permutation_from_seed(seed, self.ctx.n)
            early, self._early_votes = self._early_votes, []
            for early_sender, early_payload in early:
                self.on_message(early_sender, MSG_VOTE, early_payload)
            self._maybe_enter_loop()

    def _check_votes(self) -> None:
        if self._vba is None or self._vba_proposed or self.halted:
            return
        votes = self._votes.setdefault(self._iteration, {})
        a = self._candidate
        # Own vote is included via the self-delivered vote message; count
        # n - t proper votes before starting the binary agreement.
        if len(votes) < self.ctx.n - self.ctx.t:
            return
        self._vba_proposed = True
        if a in self._proposals:
            self._vba.propose(1, self._proposals[a][1])
        else:
            self._vba.propose(0, None)

    # -- teardown ---------------------------------------------------------------------------

    def abort(self) -> None:
        """Abort this instance and its live sub-protocols.

        Used by the pipelined atomic channel to tear down agreements for
        rounds past the closing round: the constituent broadcasts and the
        current binary agreement are aborted so they release their routing
        state along with the instance itself.
        """
        for bc in self._vcbc:
            if not bc.halted:
                bc.abort()
        if self._vba is not None and not self._vba.halted:
            self._vba.abort()
        super().abort()

    # -- binary agreement outcome ----------------------------------------------------------

    def _on_vba_decided(
        self, vba: ValidatedAgreement, bit: int, proof: Optional[bytes]
    ) -> None:
        if self.halted:
            return
        a = self.order[int(vba.pid.rsplit(".", 1)[1]) % self.ctx.n]
        if bit != 1:
            self._next_candidate()
            return
        if a not in self._proposals and proof is not None:
            # Step 3: obtain the proposal from the agreement's validation
            # data (a valid closing message for P_a's broadcast).
            self._vcbc[a].deliver_closing(proof)
        if a not in self._proposals:
            # Cannot happen for a correctly validated decision; treat as a
            # protocol error surfaced to the router.
            raise ProtocolError(f"decided candidate {a} without its proposal")
        payload, closing = self._proposals[a]
        for bc in self._vcbc:
            if not bc.halted:
                bc.abort()
        self._conclude(payload, closing)
