"""Randomized binary Byzantine agreement — Cachin-Kursawe-Shoup (Sec. 2.3).

The protocol proceeds in global rounds of three message exchanges:

1. every party relays a justified **pre-vote** for its current preference;
2. from ``n - t`` pre-votes it derives a **main-vote**: the common bit if
   they are unanimous, *abstain* otherwise;
3. from ``n - t`` main-votes it either **decides** (all main-votes carry
   the same bit) or releases a share of the round's **threshold coin**;
   the next preference is an observed non-abstain main-vote if any,
   otherwise the coin.

All votes are justified by non-interactively verifiable data and only
properly justified votes are accepted:

* a round-1 pre-vote for ``b`` is justified by external validation data
  (trivial for plain binary agreement);
* a *hard* pre-vote for ``b`` in round ``r`` is justified by the threshold
  signature on the round-``r-1`` pre-votes for ``b`` (carried by the
  main-vote the sender adopted ``b`` from);
* a *soft* pre-vote is justified by the threshold signature on abstaining
  round-``r-1`` main-votes plus ``t+1`` verified coin shares establishing
  the coin value (or the public bias for a biased round);
* a main-vote for ``b`` is justified by the threshold signature assembled
  from ``n - t`` pre-vote shares for ``b``;
* an *abstain* main-vote is justified by embedding one justified pre-vote
  for 0 and one for 1;
* a decision for ``b`` is justified by the threshold signature on
  round-``r`` main-votes for ``b``, which is broadcast so every party
  decides as soon as it sees it.

Every vote message also carries the sender's threshold-signature *share*
for the potential justification at the next level, and — in the validated
variant — the external validation data for the vote's value, so that any
party that decides a value also possesses its validation data (the paper's
external-validity property, Sec. 2.3; this is what lets multi-valued
agreement recover the decided proposal from the returned proof).

The protocol terminates within an expected constant number of rounds and a
quadratic expected number of messages dominated by threshold signatures,
exactly as the paper states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.common.encoding import encode
from repro.common.errors import CryptoError, InvalidShare, ProtocolError
from repro.core.agreement.base import Agreement
from repro.core.protocol import Context
from repro.crypto.threshold_sig import combine_optimistically

ABSTAIN = 2

MSG_PREVOTE = "pre-vote"
MSG_MAINVOTE = "main-vote"
MSG_COIN = "coin"
MSG_DECIDE = "decide"

#: ``validator(value, proof) -> bool`` — the external-validity predicate.
BinaryValidator = Callable[[int, Optional[bytes]], bool]


def _always_valid(value: int, proof: Optional[bytes]) -> bool:
    return True


def prevote_string(pid: str, r: int, b: int) -> bytes:
    """The string whose threshold signature justifies main-votes for ``b``."""
    return encode(("aba-pre", pid, r, b))


def mainvote_string(pid: str, r: int, v: int) -> bytes:
    """The string whose threshold signature justifies decisions/abstains."""
    return encode(("aba-main", pid, r, v))


def coin_name(pid: str, r: int) -> bytes:
    """The name of round ``r``'s threshold coin."""
    return encode(("aba-coin", pid, r))


@dataclass
class _RoundState:
    """Per-round bookkeeping (created lazily; rounds are 1-based)."""

    prevotes: Dict[int, int] = field(default_factory=dict)  # sender -> b
    prevote_shares: Dict[int, Dict[int, bytes]] = field(
        default_factory=lambda: {0: {}, 1: {}}
    )
    #: one example justified pre-vote per value, for abstain justifications:
    #: value -> (b, just, proof, share)
    example_prevote: Dict[int, tuple] = field(default_factory=dict)
    mainvotes: Dict[int, int] = field(default_factory=dict)  # sender -> v
    mainvote_shares: Dict[int, Dict[int, bytes]] = field(
        default_factory=lambda: {0: {}, 1: {}, ABSTAIN: {}}
    )
    #: first observed non-abstain main-vote: (b, prevote_sig)
    hard: Optional[Tuple[int, bytes]] = None
    coin_shares: Dict[int, bytes] = field(default_factory=dict)
    coin_value: Optional[int] = None
    mainvote_sent: bool = False
    coin_share_sent: bool = False
    #: senders evicted after contributing an invalid signature share
    banned: Set[int] = field(default_factory=set)


class BinaryAgreement(Agreement):
    """One instance of (optionally validated, optionally biased) ABBA.

    ``validator`` is the external-validity predicate (default: accept
    everything, i.e. plain binary agreement).  ``bias``, if given, replaces
    the round-1 coin by the constant ``bias`` (paper Sec. 2.3: a biased
    protocol always decides the preferred value when it detects that an
    honest party proposed it).
    """

    def __init__(
        self,
        ctx: Context,
        pid: str,
        validator: Optional[BinaryValidator] = None,
        bias: Optional[int] = None,
    ):
        super().__init__(ctx, pid)
        if bias not in (None, 0, 1):
            raise ProtocolError(f"bias must be 0, 1 or None, got {bias!r}")
        self.validator: BinaryValidator = validator or _always_valid
        self.bias = bias
        self.round = 0  # 0 = not started; rounds are 1-based
        self._rounds: Dict[int, _RoundState] = {}
        self._preference: Optional[int] = None
        self._pref_just: Any = None
        self._proofs: Dict[int, Optional[bytes]] = {}
        self._prevote_sent_for: Set[int] = set()
        self._decide_rebroadcast = False
        #: coin shares already verified, keyed (round, share bytes) — the
        #: same shares recur in many soft-pre-vote justifications.
        self._coin_ok: Set[Tuple[int, bytes]] = set()

    # -- convenience accessors ---------------------------------------------------

    @property
    def _quorum(self) -> int:
        return self.ctx.n - self.ctx.t

    def _state(self, r: int) -> _RoundState:
        return self._rounds.setdefault(r, _RoundState())

    def _scheme(self):
        return self.ctx.crypto.aba_scheme

    # -- paper API ------------------------------------------------------------------

    def propose(self, value: Any, proof: Optional[bytes] = None) -> None:
        value = int(bool(value))
        if not self.validator(value, proof):
            raise ProtocolError("own proposal fails the validity predicate")
        super().propose(value, proof)

    def get_proof(self) -> Optional[bytes]:
        """Validation data for the decided value (after decision)."""
        if not self.decided.done:
            raise ProtocolError("agreement has not decided yet")
        return self.decided.value[1]

    # -- protocol start ------------------------------------------------------------

    def _start(self, value: int, proof: Optional[bytes]) -> None:
        self._proofs[value] = proof
        self._preference = value
        self._pref_just = None
        self.round = 1
        self._send_prevote()
        self._replay_round()

    # -- sending --------------------------------------------------------------------

    def _send_prevote(self) -> None:
        r, b = self.round, self._preference
        if r in self._prevote_sent_for:
            return
        self._prevote_sent_for.add(r)
        share = self.ctx.crypto.aba_signer.sign_share(prevote_string(self.pid, r, b))
        self.send_all(
            MSG_PREVOTE, (r, b, self._pref_just, self._proofs.get(b), share)
        )

    # -- message handling -------------------------------------------------------------

    def on_message(self, sender: int, mtype: str, payload: Any) -> None:
        if self.halted:
            return
        if mtype == MSG_PREVOTE:
            self._on_prevote(sender, payload)
        elif mtype == MSG_MAINVOTE:
            self._on_mainvote(sender, payload)
        elif mtype == MSG_COIN:
            self._on_coin(sender, payload)
        elif mtype == MSG_DECIDE:
            self._on_decide(sender, payload)

    # -- pre-votes -----------------------------------------------------------------------

    def _on_prevote(self, sender: int, payload: Any) -> None:
        r, b, just, proof, share = payload
        if not (isinstance(r, int) and r >= 1 and b in (0, 1)):
            return
        state = self._state(r)
        if sender in state.prevotes or sender in state.banned:
            return  # only the first pre-vote per sender counts
        if not self._valid_prevote(r, b, just, proof):
            return
        scheme = self._scheme()
        if not isinstance(share, bytes):
            return
        try:
            if scheme.share_index(share) != sender + 1:
                return
        except InvalidShare:
            return
        # Shares are accepted optimistically (verified en bloc at combine
        # time) — except the one kept as the per-value example, which may
        # be embedded in an abstain justification and must be sound.
        if b not in state.example_prevote:
            if not self.ctx.crypto.accel.sig_share_ok(
                scheme, prevote_string(self.pid, r, b), share
            ):
                state.banned.add(sender)
                return
            state.example_prevote[b] = (b, just, proof, share)
        state.prevotes[sender] = b
        state.prevote_shares[b][sender + 1] = share
        self._store_proof(b, proof)
        if r == self.round:
            self._check_prevotes()

    def _valid_prevote(self, r: int, b: int, just: Any, proof: Any) -> bool:
        """Check a pre-vote's justification (and external validity)."""
        if proof is not None and not isinstance(proof, bytes):
            return False
        if not self.validator(b, proof):
            return False
        if r == 1:
            return just is None
        scheme = self._scheme()
        accel = self.ctx.crypto.accel
        if isinstance(just, tuple) and len(just) == 2 and just[0] == "hard":
            sig = just[1]
            return isinstance(sig, bytes) and accel.sig_ok(
                scheme, prevote_string(self.pid, r - 1, b), sig
            )
        if isinstance(just, tuple) and len(just) == 3 and just[0] == "soft":
            _, abstain_sig, coin_shares = just
            if not isinstance(abstain_sig, bytes) or not accel.sig_ok(
                scheme, mainvote_string(self.pid, r - 1, ABSTAIN), abstain_sig
            ):
                return False
            return self._coin_matches(r - 1, b, coin_shares)
        return False

    def _coin_matches(self, r: int, b: int, coin_shares: Any) -> bool:
        """Does round ``r``'s coin, established by ``coin_shares``, equal ``b``?"""
        if self.bias is not None and r == 1:
            return b == self.bias  # the biased round needs no coin at all
        coin = self.ctx.crypto.coin
        name = coin_name(self.pid, r)
        if not isinstance(coin_shares, (list, tuple)):
            return False
        accel = self.ctx.crypto.accel
        valid: Dict[int, bytes] = {}
        if accel.batch:
            # A justification's whole share list verifies in one
            # random-linear-combination batch.
            candidates: Dict[int, bytes] = {}
            for cs in coin_shares:
                if not isinstance(cs, bytes):
                    continue
                try:
                    candidates.setdefault(_coin_share_index(cs), cs)
                except (CryptoError, InvalidShare):
                    continue
            valid, _bad = accel.coin_quorum(coin, name, candidates)
        else:
            for cs in coin_shares:
                if isinstance(cs, bytes) and self._coin_share_ok(r, name, cs):
                    try:
                        valid[_coin_share_index(cs)] = cs
                    except (CryptoError, InvalidShare):
                        continue
                if len(valid) >= coin.k:
                    break
        if len(valid) < coin.k:
            return False
        return coin.assemble_bit(name, valid) == b

    def _coin_share_ok(self, r: int, name: bytes, share: bytes) -> bool:
        """Verify a coin share with memoization."""
        key = (r, share)
        if key in self._coin_ok:
            return True
        if self.ctx.crypto.accel.coin_share_ok(self.ctx.crypto.coin, name, share):
            self._coin_ok.add(key)
            return True
        return False

    def _check_prevotes(self) -> None:
        r = self.round
        state = self._state(r)
        if state.mainvote_sent or len(state.prevotes) < self._quorum:
            return
        scheme = self._scheme()
        values = set(state.prevotes.values())
        if len(values) == 1:
            b = values.pop()
            sig = combine_optimistically(
                scheme,
                prevote_string(self.pid, r, b),
                state.prevote_shares[b],
                verifier=self.ctx.crypto.accel,
            )
            if sig is None:
                self._evict(state.prevotes, state.prevote_shares[b], b, state)
                return  # wait for further (honest) pre-votes
            v, just, proof = b, sig, self._proofs.get(b)
        else:
            v = ABSTAIN
            just = (state.example_prevote[0], state.example_prevote[1])
            proof = None
        state.mainvote_sent = True
        share = self.ctx.crypto.aba_signer.sign_share(mainvote_string(self.pid, r, v))
        self.send_all(MSG_MAINVOTE, (r, v, just, proof, share))

    @staticmethod
    def _evict(
        votes: Dict[int, int],
        shares: Dict[int, bytes],
        value: int,
        state: _RoundState,
    ) -> None:
        """Drop votes whose shares were evicted by the optimistic combiner."""
        for sender in [s for s, v in votes.items() if v == value and s + 1 not in shares]:
            del votes[sender]
            state.banned.add(sender)

    # -- main-votes ------------------------------------------------------------------------

    def _on_mainvote(self, sender: int, payload: Any) -> None:
        r, v, just, proof, share = payload
        if not (isinstance(r, int) and r >= 1 and v in (0, 1, ABSTAIN)):
            return
        state = self._state(r)
        if sender in state.mainvotes or sender in state.banned:
            return
        if not self._valid_mainvote(r, v, just, proof):
            return
        scheme = self._scheme()
        if not isinstance(share, bytes):
            return
        try:
            if scheme.share_index(share) != sender + 1:
                return
        except InvalidShare:
            return
        state.mainvotes[sender] = v
        state.mainvote_shares[v][sender + 1] = share
        if v != ABSTAIN:
            self._store_proof(v, proof)
            if state.hard is None:
                state.hard = (v, just)
        else:
            # Embedded justified pre-votes carry validation data for both
            # values — record it, so a later coin-based pre-vote is
            # externally justified.
            for b, _, embedded_proof, _ in just:
                self._store_proof(b, embedded_proof)
        if r == self.round:
            self._check_mainvotes()

    def _valid_mainvote(self, r: int, v: int, just: Any, proof: Any) -> bool:
        scheme = self._scheme()
        if v in (0, 1):
            if proof is not None and not isinstance(proof, bytes):
                return False
            if not self.validator(v, proof):
                return False
            return isinstance(just, bytes) and self.ctx.crypto.accel.sig_ok(
                scheme, prevote_string(self.pid, r, v), just
            )
        # Abstain: embed one justified pre-vote for 0 and one for 1.
        if not (isinstance(just, tuple) and len(just) == 2):
            return False
        seen: Set[int] = set()
        for entry in just:
            if not (isinstance(entry, tuple) and len(entry) == 4):
                return False
            b, pv_just, pv_proof, pv_share = entry
            if b not in (0, 1) or b in seen:
                return False
            seen.add(b)
            if not self._valid_prevote(r, b, pv_just, pv_proof):
                return False
            if not isinstance(pv_share, bytes) or not self.ctx.crypto.accel.sig_share_ok(
                scheme, prevote_string(self.pid, r, b), pv_share
            ):
                return False
        return seen == {0, 1}

    def _check_mainvotes(self) -> None:
        r = self.round
        state = self._state(r)
        if len(state.mainvotes) < self._quorum:
            return
        values = set(state.mainvotes.values())
        if len(values) == 1 and ABSTAIN not in values:
            b = values.pop()
            sig = combine_optimistically(
                self._scheme(),
                mainvote_string(self.pid, r, b),
                state.mainvote_shares[b],
                verifier=self.ctx.crypto.accel,
            )
            if sig is None:
                self._evict(state.mainvotes, state.mainvote_shares[b], b, state)
                return
            self._decide(r, b, sig)
            return
        # No decision: release this round's coin share (step 3)...
        if not state.coin_share_sent:
            state.coin_share_sent = True
            if not (self.bias is not None and r == 1):
                cs = self.ctx.crypto.coin_holder.release(coin_name(self.pid, r))
                self.send_all(MSG_COIN, (r, cs))
            else:
                state.coin_value = self.bias
        # ... and move on (step 4): adopt a hard preference immediately,
        # otherwise wait for the coin.
        self._try_advance()

    # -- coin ---------------------------------------------------------------------------------

    def _on_coin(self, sender: int, payload: Any) -> None:
        r, share = payload
        if not (isinstance(r, int) and r >= 1 and isinstance(share, bytes)):
            return
        state = self._state(r)
        if sender in state.coin_shares:
            return
        coin = self.ctx.crypto.coin
        name = coin_name(self.pid, r)
        accel = self.ctx.crypto.accel
        if accel.defer_shares or accel.batch:
            # Defer verification until a candidate quorum is in hand, then
            # check the whole set at once (batched when enabled); invalid
            # shares are discarded and the quorum wait continues.
            state.coin_shares[sender + 1] = share
            if state.coin_value is None and len(state.coin_shares) >= coin.k:
                valid, bad = accel.coin_quorum(coin, name, state.coin_shares)
                if bad:
                    for index in bad:
                        state.coin_shares.pop(index, None)
                if len(valid) >= coin.k:
                    state.coin_value = coin.assemble_bit(name, valid)
                    if r == self.round:
                        self._try_advance()
            return
        if not self._coin_share_ok(r, name, share):
            return
        state.coin_shares[sender + 1] = share
        if state.coin_value is None and len(state.coin_shares) >= coin.k:
            state.coin_value = coin.assemble_bit(name, state.coin_shares)
            if r == self.round:
                self._try_advance()

    # -- round advancement -------------------------------------------------------------------

    def _try_advance(self) -> None:
        r = self.round
        state = self._state(r)
        if not state.coin_share_sent:  # main-vote phase not finished
            return
        if state.hard is not None:
            b, sig = state.hard
            self._preference = b
            self._pref_just = ("hard", sig)
        elif state.coin_value is not None:
            c = state.coin_value
            abstain_sig = combine_optimistically(
                self._scheme(),
                mainvote_string(self.pid, r, ABSTAIN),
                state.mainvote_shares[ABSTAIN],
                verifier=self.ctx.crypto.accel,
            )
            if abstain_sig is None:
                self._evict(
                    state.mainvotes, state.mainvote_shares[ABSTAIN], ABSTAIN, state
                )
                return  # wait for further honest abstain main-votes
            shares = list(state.coin_shares.values())
            self._preference = c
            self._pref_just = ("soft", abstain_sig, shares)
        else:
            return  # waiting for the coin
        self.round = r + 1
        self._send_prevote()
        self._replay_round()

    def _replay_round(self) -> None:
        """Re-evaluate already-buffered votes for the (new) current round."""
        self._check_prevotes()
        state = self._state(self.round)
        if state.mainvote_sent:
            self._check_mainvotes()

    # -- decision -------------------------------------------------------------------------------

    def _decide(self, r: int, b: int, sig: bytes) -> None:
        proof = self._proofs.get(b)
        self.send_all(MSG_DECIDE, (r, b, sig, proof))
        self._conclude(b, proof)

    def _on_decide(self, sender: int, payload: Any) -> None:
        r, b, sig, proof = payload
        if not (isinstance(r, int) and r >= 1 and b in (0, 1)):
            return
        if proof is not None and not isinstance(proof, bytes):
            return
        if not self.validator(b, proof):
            return
        if not isinstance(sig, bytes) or not self.ctx.crypto.accel.sig_ok(
            self._scheme(), mainvote_string(self.pid, r, b), sig
        ):
            return
        self._store_proof(b, proof)
        if not self._decide_rebroadcast:
            # Relay the transferable decision so every party terminates.
            self._decide_rebroadcast = True
            self.send_all(MSG_DECIDE, (r, b, sig, self._proofs.get(b)))
        self._conclude(b, self._proofs.get(b))

    # -- misc ----------------------------------------------------------------------------------

    def _store_proof(self, b: int, proof: Optional[bytes]) -> None:
        if self._proofs.get(b) is None and proof is not None:
            if self.validator(b, proof):
                self._proofs[b] = proof


def _coin_share_index(share: bytes) -> int:
    """Extract the 1-based holder index from an encoded coin share."""
    from repro.common.encoding import decode

    decoded = decode(share)
    index = decoded[0]
    if not isinstance(index, int):
        raise InvalidShare("malformed coin share")
    return index
