"""Validated (binary) Byzantine agreement (paper Secs. 2.3 and 3.3).

Binary agreement with *external validity*: initial values are accompanied
by a validating proof, whose validity in the application's context is
established by a :data:`BinaryValidator` predicate; an honest party may
only decide a value for which it possesses validation data, and
``get_proof`` returns it together with the decision.

The agreement can be *biased*: a biased instance always decides the
preferred value when it detects that an honest party proposed it; per the
paper this is obtained by replacing the output of the round-1 threshold
coin with the bias.

The whole mechanism lives in :class:`~repro.core.agreement.binary.
BinaryAgreement`; this subclass fixes the paper's API shape (mandatory
validator, constructor bias).
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import ProtocolError
from repro.core.agreement.binary import BinaryAgreement, BinaryValidator
from repro.core.protocol import Context


class ValidatedAgreement(BinaryAgreement):
    """Validated binary agreement with an optional bias."""

    def __init__(
        self,
        ctx: Context,
        pid: str,
        validator: BinaryValidator,
        bias: Optional[int] = None,
    ):
        if validator is None:
            raise ProtocolError("validated agreement requires a validator")
        super().__init__(ctx, pid, validator=validator, bias=bias)

    def negotiate(self, value: int, proof: Optional[bytes]) -> object:
        """Propose and return the decision future."""
        self.propose(value, proof)
        return self.decided
