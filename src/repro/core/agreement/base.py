"""Common base for the agreement protocols.

The paper's ``Agreement`` interface: a party ``proposes`` a value once and
``decides`` exactly once; ``negotiate`` is propose-then-decide.  The
decision is exposed as a future resolving with ``(value, proof)`` where
``proof`` is the validation data of validated agreement (``None``
otherwise).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.common.errors import ProtocolError
from repro.core.protocol import Context, Protocol


class Agreement(Protocol):
    """Abstract agreement instance."""

    def __init__(self, ctx: Context, pid: str):
        super().__init__(ctx, pid)
        self.decided = ctx.new_future()
        #: optional synchronous hook for parent protocols, invoked inside
        #: the deciding handler as ``on_decide(self, value, proof)``.
        self.on_decide: Optional[Any] = None
        self._proposed = False
        self._concluded = False

    # -- paper API ---------------------------------------------------------------

    def propose(self, value: Any, proof: Optional[bytes] = None) -> None:
        """Start this party's participation with its proposal (once)."""
        if self._proposed:
            raise ProtocolError("propose may be executed exactly once")
        self._proposed = True
        self.ctx.api(lambda: self._start(value, proof))

    def decide(self) -> Any:
        """The future resolving with ``(value, proof)``."""
        return self.decided

    def can_decide(self) -> bool:
        return bool(self.decided.done)

    # -- subclass hook -------------------------------------------------------------

    def _start(self, value: Any, proof: Optional[bytes]) -> None:
        raise NotImplementedError

    def _conclude(self, value: Any, proof: Optional[bytes]) -> None:
        """Resolve the decision (the paper's DECIDE event) and terminate."""
        if not self._concluded:
            self._concluded = True
            self.ctx.effect(self.decided.resolve, (value, proof))
            self.halt()
            if self.on_decide is not None:
                self.on_decide(self, value, proof)
