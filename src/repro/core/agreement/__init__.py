"""Byzantine agreement protocols (paper Secs. 2.3, 2.4 and 3.3)."""

from repro.core.agreement.base import Agreement
from repro.core.agreement.binary import BinaryAgreement
from repro.core.agreement.validated import ValidatedAgreement
from repro.core.agreement.multivalued import ArrayAgreement

__all__ = [
    "Agreement",
    "BinaryAgreement",
    "ValidatedAgreement",
    "ArrayAgreement",
]
