"""Protocol base class, execution context and message router.

Mirrors the paper's Sec. 3: every protocol running in SINTRA is an
instance of :class:`Protocol`, uniquely identified by its protocol
identifier ``pid``, which is included in all cryptographic operations of
the instance.  Protocols are written *sans-I/O*: they react to
``on_message`` calls and API calls, and interact with the world only
through a :class:`Context` — which is implemented both by the
discrete-event simulator runtime and by the asyncio/TCP runtime.

The paper's local events map onto this interface as follows: SEND/PROPOSE
are API calls on the protocol object; DELIVER/DECIDE are values pushed
into runtime queues/futures (via :meth:`Context.effect`, so they take
effect at the handler's CPU completion time in the simulator); ABORT is
the :meth:`Protocol.abort` call.
"""

from __future__ import annotations

import abc
import logging
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.common.errors import ProtocolError, ReproError
from repro.crypto.dealer import PartyCrypto
from repro.obs.recorder import NULL as NULL_RECORDER
from repro.obs.recorder import Recorder

logger = logging.getLogger("repro.core")


class Context(abc.ABC):
    """Runtime services available to a protocol instance.

    Attributes set by the runtime:
        node_id: this party's 0-based index.
        n, t: group size and fault threshold.
        crypto: this party's :class:`PartyCrypto` bundle.
        router: the party's message :class:`Router`.
        obs: the runtime's :class:`~repro.obs.recorder.Recorder`
            (the no-op :data:`~repro.obs.recorder.NULL` by default, so
            direct-drive unit tests need no setup).
    """

    node_id: int
    n: int
    t: int
    crypto: PartyCrypto
    router: "Router"
    obs: Recorder = NULL_RECORDER

    @abc.abstractmethod
    def send(self, dst: int, pid: str, mtype: str, payload: Any) -> None:
        """Send a protocol message over the authenticated link to ``dst``."""

    def broadcast(self, pid: str, mtype: str, payload: Any) -> None:
        """Send to all parties, including this one (via the local loop)."""
        for dst in range(self.n):
            self.send(dst, pid, mtype, payload)

    @abc.abstractmethod
    def effect(self, fn: Callable, *args: Any) -> None:
        """Apply ``fn(*args)`` at this handler's completion time.

        Used for protocol outputs (DELIVER/DECIDE events) so that, under
        the simulator, applications observe them only once the node's CPU
        has actually finished the work that produced them.
        """

    @abc.abstractmethod
    def defer(self, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` as a fresh unit of CPU work on this node."""

    @abc.abstractmethod
    def new_queue(self) -> Any:
        """A runtime FIFO queue (``put(item)`` / ``get()`` / ``can_get()``)."""

    @abc.abstractmethod
    def new_future(self) -> Any:
        """A runtime one-shot future (``resolve(value)`` / ``done``)."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (virtual under the simulator)."""

    def api(self, fn: Callable[[], None]) -> None:
        """Run an API-triggered protocol action as work on this node.

        Called by protocol API methods (``send``, ``propose``, ...) so the
        action is executed on the party's CPU: immediately when already
        inside a handler, otherwise as a freshly scheduled unit of work.
        The default runs ``fn`` synchronously (suitable for direct-drive
        unit tests); the simulator runtime overrides it.
        """
        fn()

    def set_timer(self, delay: float, fn: Callable[[], None]) -> "Timer":
        """Schedule ``fn`` as node work after ``delay`` seconds.

        SINTRA's safety never depends on timers (the model is fully
        asynchronous); they exist for *liveness-only* mechanisms such as
        the optimistic channel's sequencer suspicion, following the
        optimistic protocols the paper's conclusion points to.
        """
        raise NotImplementedError("this context provides no timers")


class Timer:
    """Cancellable handle returned by :meth:`Context.set_timer`."""

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def active(self) -> bool:
        return not self._cancelled


class Router:
    """Per-party demultiplexer from wire messages to protocol instances.

    Messages may arrive before the local instance exists (normal in an
    asynchronous network: a fast peer can be a protocol step ahead), so
    unknown pids are buffered and replayed on registration.  Messages for
    pids that have already terminated are dropped.

    Exceptions raised by handlers on adversarial input are contained here
    (a Byzantine message must never crash an honest server) and recorded
    in :attr:`errors` so honest-run tests can assert none occurred.
    """

    def __init__(self, buffer_limit: int = 100_000, recorder: Optional[Recorder] = None):
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self._instances: Dict[str, "Protocol"] = {}
        self._buffers: Dict[str, List[Tuple[int, str, Any]]] = {}
        self._tombstones: Set[str] = set()
        self._replaying: Set[str] = set()
        self._buffer_limit = buffer_limit
        self._buffered_count = 0
        self.errors: List[Tuple[str, int, Exception]] = []
        self.dropped = 0
        #: passive observers ``obs(sender, pid, mtype, payload)`` called
        #: for every message handed to a protocol instance (including
        #: buffered replays).  Used by the testing harness's invariant
        #: checkers to watch protocol traffic — e.g. the stability
        #: checker's acknowledgment-vector monotonicity — without touching
        #: protocol internals.  Observer exceptions are *not* contained:
        #: an invariant violation must abort the run.
        self.observers: List[Callable[[int, str, str, Any], None]] = []

    def register(self, protocol: "Protocol") -> None:
        pid = protocol.pid
        if pid in self._instances:
            raise ProtocolError(f"protocol id {pid!r} already registered")
        if pid in self._tombstones:
            raise ProtocolError(f"protocol id {pid!r} was already terminated")
        self._instances[pid] = protocol
        if self._buffers.get(pid):
            # Replay buffered early messages in a fresh unit of work: the
            # instance is still mid-construction here (register is called
            # from the base-class constructor).  Until the replay runs,
            # new arrivals keep buffering so per-sender FIFO is preserved.
            self._replaying.add(pid)
            protocol.ctx.defer(lambda: self._drain(pid))

    def _drain(self, pid: str) -> None:
        self._replaying.discard(pid)
        while True:
            protocol = self._instances.get(pid)
            pending = self._buffers.get(pid)
            if protocol is None or not pending:
                break
            sender, mtype, payload = pending.pop(0)
            self._buffered_count -= 1
            self._invoke(protocol, sender, mtype, payload)
        if not self._buffers.get(pid):
            self._buffers.pop(pid, None)

    def unregister(self, pid: str) -> None:
        self._instances.pop(pid, None)
        self._tombstones.add(pid)
        self._replaying.discard(pid)
        dropped = self._buffers.pop(pid, [])
        self._buffered_count -= len(dropped)

    def forget(self, pid: str) -> None:
        """Clear a tombstone so a successor instance may register the id.

        Membership handover needs this: the state-transfer exchange id is
        deliberately epoch-less (a newcomer must pull checkpoints from any
        epoch), so when a replaced replica's process is simulated on the
        same router, the successor re-registers the retired id.  Messages
        arriving in the gap buffer as usual until the successor appears."""
        self._tombstones.discard(pid)

    def dispatch(self, sender: int, pid: str, mtype: str, payload: Any) -> None:
        if pid not in self._replaying:
            protocol = self._instances.get(pid)
            if protocol is not None:
                self._invoke(protocol, sender, mtype, payload)
                return
            if pid in self._tombstones:
                self.dropped += 1
                return
        if self._buffered_count >= self._buffer_limit:
            self.dropped += 1
            if self.obs.enabled:
                self.obs.count("router.dropped")
            logger.warning("router buffer full; dropping message for %s", pid)
            return
        self._buffers.setdefault(pid, []).append((sender, mtype, payload))
        self._buffered_count += 1
        if self.obs.enabled:
            self.obs.count("router.buffered")

    def _invoke(self, protocol: "Protocol", sender: int, mtype: str, payload: Any) -> None:
        if self.obs.enabled:
            self.obs.count("router.dispatched")
        for obs in self.observers:
            obs(sender, protocol.pid, mtype, payload)
        try:
            protocol.on_message(sender, mtype, payload)
        except (ReproError, TypeError, ValueError, KeyError, IndexError) as exc:
            # Malformed or malicious input: contain, record, continue.
            self.errors.append((protocol.pid, sender, exc))
            if self.obs.enabled:
                self.obs.count("router.handler_errors")
            logger.debug(
                "handler error in %s for %r from %d: %r",
                protocol.pid, mtype, sender, exc,
            )

    @property
    def active_pids(self) -> List[str]:
        return sorted(self._instances)


class Protocol:
    """Base class of every SINTRA protocol (paper Fig. 2)."""

    def __init__(self, ctx: Context, pid: str):
        self.ctx = ctx
        self.pid = pid
        self.halted = False
        #: the runtime's recorder; per-instance phase timings use
        #: :attr:`obs_scope` so parties sharing a recorder never collide.
        self.obs = ctx.obs
        self.obs_scope = (ctx.node_id, pid)
        ctx.router.register(self)

    # -- messaging helpers (named to avoid clashing with the paper's
    # ``send`` API on Broadcast/Channel subclasses) ---------------------------

    def unicast(self, dst: int, mtype: str, payload: Any) -> None:
        self.ctx.send(dst, self.pid, mtype, payload)

    def send_all(self, mtype: str, payload: Any) -> None:
        self.ctx.broadcast(self.pid, mtype, payload)

    # -- lifecycle ---------------------------------------------------------------

    def on_message(self, sender: int, mtype: str, payload: Any) -> None:
        """Handle one authenticated message; overridden by protocols."""
        raise NotImplementedError

    def halt(self) -> None:
        """Terminate locally and release routing state."""
        if not self.halted:
            self.halted = True
            self.ctx.router.unregister(self.pid)

    def abort(self) -> None:
        """Force immediate local termination (paper: the ABORT event).

        The local instance is cleaned up; the state of other parties
        engaged in the protocol is unspecified, as in the paper.
        """
        self.halt()
