"""Verifiable consistent broadcast (paper Secs. 3.2 and 2.4).

Consistent broadcast is *verifiable*: a party that has delivered the
payload can produce a single **closing message** — the payload together
with the threshold signature binding it to the instance — that allows any
other party to deliver and terminate the broadcast without waiting for
further network messages.  This is a virtual protocol on top of
:class:`ConsistentBroadcast` requiring no additional communication.

The closing message is how the multi-valued agreement protocol proves that
a candidate actually made a proposal (Sec. 2.4).
"""

from __future__ import annotations

from typing import Optional

from repro.common.encoding import decode, encode
from repro.common.errors import EncodingError
from repro.core.broadcast.consistent import ConsistentBroadcast, _bound_message
from repro.crypto.dealer import PartyCrypto


class VerifiableConsistentBroadcast(ConsistentBroadcast):
    """Consistent broadcast with closing messages."""

    # -- closing-message production -------------------------------------------

    def get_closing(self) -> bytes:
        """The closing message of an already-delivered instance."""
        if self.payload is None or self.signature is None:
            raise EncodingError("broadcast has not delivered yet")
        return encode((self.payload, self.signature))

    # -- closing-message consumption -----------------------------------------------

    def deliver_closing(self, closing: bytes) -> bool:
        """Deliver from a closing message; returns ``True`` if accepted."""
        if self.halted:
            return True
        parsed = parse_closing(self.ctx.crypto, self.pid, closing)
        if parsed is None:
            return False
        payload, signature = parsed
        self.signature = signature
        self._deliver(payload)
        return True

    # -- static helpers (paper API) ---------------------------------------------

    @staticmethod
    def get_payload_from_closing(closing: bytes) -> bytes:
        """Extract the payload of a closing message (no verification)."""
        payload, _ = decode(closing)
        if not isinstance(payload, bytes):
            raise EncodingError("malformed closing message")
        return payload

    @staticmethod
    def is_valid_closing(crypto: PartyCrypto, pid: str, closing: bytes) -> bool:
        """Check whether ``closing`` closes the instance ``pid``."""
        return parse_closing(crypto, pid, closing) is not None


def parse_closing(
    crypto: PartyCrypto, pid: str, closing: bytes
) -> Optional["tuple[bytes, bytes]"]:
    """Verify and destructure a closing message, or return ``None``."""
    try:
        payload, signature = decode(closing)
    except (EncodingError, ValueError, TypeError):
        return None
    if not isinstance(payload, bytes) or not isinstance(signature, bytes):
        return None
    if not crypto.accel.sig_ok(
        crypto.cbc_scheme, _bound_message(pid, payload), signature
    ):
        return None
    return payload, signature
