"""Reliable broadcast — the protocol of Bracha and Toueg (paper Sec. 2.2).

Guarantees *agreement*: all honest parties deliver the same message or
nothing at all.  The protocol uses no public-key cryptography, only the
(cheap) authenticated point-to-point links:

1. the sender sends the payload to all parties;
2. all parties "echo" the sender's message to each other;
3. upon ``ceil((n+t+1)/2)`` echoes or ``t+1`` "ready" messages for the
   same payload, a party sends a "ready" message to all;
4. upon ``2t+1`` "ready" messages a party accepts the payload and
   delivers it.

Message complexity is quadratic in ``n``; the paper's measurements show
this is nevertheless *faster* than consistent broadcast on all setups
because it performs no digital-signature operations (Table 1).
"""

from __future__ import annotations

from typing import Any, Dict, Set

from repro.core.broadcast.base import Broadcast
from repro.crypto.hashing import sha256

MSG_SEND = "send"
MSG_ECHO = "echo"
MSG_READY = "ready"


class ReliableBroadcast(Broadcast):
    """One instance of Bracha's reliable broadcast."""

    def __init__(self, ctx, basepid: str, sender: int):
        super().__init__(ctx, basepid, sender)
        self._echoes: Dict[bytes, Set[int]] = {}
        self._readies: Dict[bytes, Set[int]] = {}
        self._payloads: Dict[bytes, bytes] = {}
        self._echo_sent = False
        self._ready_sent = False

    @property
    def _echo_quorum(self) -> int:
        return (self.ctx.n + self.ctx.t + 2) // 2  # ceil((n + t + 1) / 2)

    # -- sending -------------------------------------------------------------

    def _start(self, message: bytes) -> None:
        self.send_all(MSG_SEND, message)

    # -- receiving -------------------------------------------------------------

    def on_message(self, sender: int, mtype: str, payload: Any) -> None:
        if self.halted or not isinstance(payload, bytes):
            return
        if mtype == MSG_SEND:
            self._on_send(sender, payload)
        elif mtype == MSG_ECHO:
            self._on_echo(sender, payload)
        elif mtype == MSG_READY:
            self._on_ready(sender, payload)

    def _on_send(self, sender: int, payload: bytes) -> None:
        if sender != self.sender or self._echo_sent:
            return
        self._echo_sent = True
        self.send_all(MSG_ECHO, payload)

    def _on_echo(self, sender: int, payload: bytes) -> None:
        digest = sha256(payload)
        self._payloads.setdefault(digest, payload)
        voters = self._echoes.setdefault(digest, set())
        if sender in voters:
            return
        voters.add(sender)
        if len(voters) >= self._echo_quorum:
            self._maybe_ready(digest)

    def _on_ready(self, sender: int, payload: bytes) -> None:
        digest = sha256(payload)
        self._payloads.setdefault(digest, payload)
        voters = self._readies.setdefault(digest, set())
        if sender in voters:
            return
        voters.add(sender)
        if len(voters) >= self.ctx.t + 1:
            self._maybe_ready(digest)
        if len(voters) >= 2 * self.ctx.t + 1:
            self._deliver(self._payloads[digest])

    def _maybe_ready(self, digest: bytes) -> None:
        if self._ready_sent:
            return
        self._ready_sent = True
        self.send_all(MSG_READY, self._payloads[digest])
