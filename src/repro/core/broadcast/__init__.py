"""Broadcast primitives (paper Sec. 2.2 and 3.2)."""

from repro.core.broadcast.reliable import ReliableBroadcast
from repro.core.broadcast.consistent import ConsistentBroadcast
from repro.core.broadcast.verifiable import VerifiableConsistentBroadcast

__all__ = [
    "ReliableBroadcast",
    "ConsistentBroadcast",
    "VerifiableConsistentBroadcast",
]
