"""Common base for the broadcast primitives.

A broadcast disseminates one payload message from a distinguished sender
to all parties (paper Sec. 2.2).  Local events: ``send`` (API call, sender
only, exactly once) and ``deliver`` (the ``delivered`` future resolves with
the payload).  Termination is guaranteed only for honest senders.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.common.errors import ProtocolError
from repro.core.protocol import Context, Protocol


class Broadcast(Protocol):
    """Abstract broadcast instance with a designated sender.

    Following the paper's API, the protocol identifier is derived from a
    base pid and the sender's index: ``pid = basepid + "." + sender``.
    """

    def __init__(self, ctx: Context, basepid: str, sender: int):
        if not 0 <= sender < ctx.n:
            raise ProtocolError(f"sender index {sender} out of range")
        super().__init__(ctx, f"{basepid}.{sender}")
        self.sender = sender
        self.delivered = ctx.new_future()
        #: optional synchronous hook for parent protocols, invoked inside
        #: the delivering handler as ``on_deliver(self, payload)``.
        self.on_deliver: Optional[Any] = None
        #: the delivered payload (set synchronously at delivery; the
        #: ``delivered`` future resolves at CPU-completion time).
        self.payload: Optional[bytes] = None
        self._sent = False
        self._delivered_flag = False

    # -- paper API ---------------------------------------------------------------

    def get_sender(self) -> int:
        return self.sender

    def send(self, message: bytes) -> None:
        """Start the broadcast; may only be executed by the sender, once."""
        if self.ctx.node_id != self.sender:
            raise ProtocolError("only the designated sender may send")
        if self._sent:
            raise ProtocolError("send may be executed exactly once")
        if not isinstance(message, (bytes, bytearray)):
            raise ProtocolError("broadcast payloads are byte strings")
        self._sent = True
        data = bytes(message)
        self.ctx.api(lambda: self._start(data))

    def receive(self) -> Any:
        """The future resolving with the delivered payload."""
        return self.delivered

    def can_receive(self) -> bool:
        return bool(self.delivered.done)

    # -- subclass hooks --------------------------------------------------------

    def _start(self, message: bytes) -> None:
        raise NotImplementedError

    def _deliver(self, payload: bytes) -> None:
        """Accept the payload (the paper's DELIVER event) and terminate."""
        if not self._delivered_flag:
            self._delivered_flag = True
            self.payload = payload
            self.ctx.effect(self.delivered.resolve, payload)
            self._on_delivered(payload)
            self.halt()
            if self.on_deliver is not None:
                self.on_deliver(self, payload)

    def _on_delivered(self, payload: bytes) -> None:
        """Hook for subclasses needing to record delivery context."""
