"""Consistent (echo) broadcast (paper Sec. 2.2).

Reiter's echo broadcast with a threshold-signature quorum certificate:

1. the sender sends the payload to all parties;
2. every party binds the payload to this broadcast instance by producing
   a threshold-signature share on ``(pid, payload)`` and echoes the share
   back to the sender (at most once — this is what makes two conflicting
   certificates impossible);
3. from a quorum of ``ceil((n+t+1)/2)`` valid shares the sender assembles
   the threshold signature and sends it to all parties;
4. a party delivers the payload when it receives the valid signature.

Only *consistency* is guaranteed: parties that deliver, deliver the same
payload, but some honest parties may deliver nothing.  Communication is
linear in ``n`` (vs. quadratic for reliable broadcast) at the price of
threshold-signature computation — the trade-off measured in Table 1.

The threshold signature may be a multi-signature, in which case this is
exactly the protocol proposed by Reiter (paper Sec. 2.1/2.2).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.common.encoding import encode
from repro.common.errors import InvalidShare
from repro.core.broadcast.base import Broadcast
from repro.crypto.threshold_sig import combine_optimistically

MSG_SEND = "send"
MSG_ECHO = "echo"
MSG_FINAL = "final"


def _bound_message(pid: str, payload: bytes) -> bytes:
    """The string the threshold signature binds: payload + instance."""
    return encode(("cbc", pid, payload))


class ConsistentBroadcast(Broadcast):
    """One instance of consistent broadcast."""

    def __init__(self, ctx, basepid: str, sender: int):
        super().__init__(ctx, basepid, sender)
        self._echoed = False
        self._shares: Dict[int, bytes] = {}
        self._sent_final = False
        self._payload: Optional[bytes] = None
        self.signature: Optional[bytes] = None  # set on delivery

    @property
    def _quorum(self) -> int:
        return self.ctx.crypto.cbc_scheme.k

    # -- sender side -------------------------------------------------------------

    def _start(self, message: bytes) -> None:
        self._payload = message
        self.send_all(MSG_SEND, message)

    # -- message handling -----------------------------------------------------------

    def on_message(self, sender: int, mtype: str, payload: Any) -> None:
        if self.halted:
            return
        if mtype == MSG_SEND:
            self._on_send(sender, payload)
        elif mtype == MSG_ECHO:
            self._on_echo(sender, payload)
        elif mtype == MSG_FINAL:
            self._on_final(sender, payload)

    def _on_send(self, sender: int, payload: Any) -> None:
        if sender != self.sender or self._echoed:
            return
        if not isinstance(payload, bytes):
            return
        self._echoed = True
        if self._payload is None:
            self._payload = payload
        share = self.ctx.crypto.cbc_signer.sign_share(
            _bound_message(self.pid, payload)
        )
        self.unicast(self.sender, MSG_ECHO, share)

    def _on_echo(self, sender: int, share: Any) -> None:
        # Only the sender collects echo shares.
        if self.ctx.node_id != self.sender or self._sent_final:
            return
        if self._payload is None or not isinstance(share, bytes):
            return
        scheme = self.ctx.crypto.cbc_scheme
        bound = _bound_message(self.pid, self._payload)
        try:
            index = scheme.share_index(share)
        except InvalidShare:
            return
        if index != sender + 1:
            return  # a share must come from its owner
        # Optimistic share handling: shares are accepted unverified and the
        # combined signature is checked once; only if a corrupted party
        # slipped in a bad share do we pay for per-share verification.
        self._shares[index] = share
        if len(self._shares) >= self._quorum:
            signature = combine_optimistically(
                scheme, bound, self._shares, verifier=self.ctx.crypto.accel
            )
            if signature is None:
                return  # bad shares were evicted; wait for more echoes
            self._sent_final = True
            self.send_all(MSG_FINAL, (self._payload, signature))

    def _on_final(self, sender: int, payload: Any) -> None:
        if not isinstance(payload, tuple) or len(payload) != 2:
            return
        message, signature = payload
        if not isinstance(message, bytes) or not isinstance(signature, bytes):
            return
        scheme = self.ctx.crypto.cbc_scheme
        if not self.ctx.crypto.accel.sig_ok(
            scheme, _bound_message(self.pid, message), signature
        ):
            return
        self.signature = signature
        self._deliver(message)
