"""The SINTRA protocol stack (paper Sec. 2): broadcast primitives,
Byzantine agreement and broadcast channels on top of threshold
cryptography and reliable point-to-point links."""

from repro.core.protocol import Context, Protocol, Router
from repro.core.party import Party, make_parties
from repro.core.broadcast import (
    ConsistentBroadcast,
    ReliableBroadcast,
    VerifiableConsistentBroadcast,
)
from repro.core.agreement import (
    Agreement,
    ArrayAgreement,
    BinaryAgreement,
    ValidatedAgreement,
)
from repro.core.channel import (
    AtomicChannel,
    Channel,
    ConsistentChannel,
    ReliableChannel,
    SecureAtomicChannel,
)

__all__ = [
    "Context",
    "Protocol",
    "Router",
    "Party",
    "make_parties",
    "ReliableBroadcast",
    "ConsistentBroadcast",
    "VerifiableConsistentBroadcast",
    "Agreement",
    "BinaryAgreement",
    "ValidatedAgreement",
    "ArrayAgreement",
    "Channel",
    "AtomicChannel",
    "SecureAtomicChannel",
    "ReliableChannel",
    "ConsistentChannel",
]
