"""Consistent channel: aggregated echo broadcasts (paper Sec. 2.7).

Provides the ``Channel`` interface over ``n`` parallel consistent-broadcast
instances: only *consistency* is guaranteed — honest parties never deliver
conflicting messages for the same slot but some may deliver nothing.
Combined with an external stability mechanism this corresponds to the WAN
broadcast protocol of Malkhi, Merritt and Rodeh, as the paper notes.
"""

from __future__ import annotations

from repro.core.broadcast.consistent import ConsistentBroadcast
from repro.core.channel.aggregated import BroadcastChannel


class ConsistentChannel(BroadcastChannel):
    """Aggregated consistent broadcast."""

    broadcast_cls = ConsistentBroadcast
    kind = "consistent"
