"""A stability mechanism over the consistent channel (paper Sec. 2.7).

The consistent channel guarantees only *consistency*: parties that deliver
a slot deliver the same payload, but some honest parties may deliver
nothing.  The paper notes these cheap channels become useful "in
particular when combined with external means to provide agreement about
which messages have actually been delivered.  For example, Malkhi,
Merritt, and Rodeh propose an external 'stability mechanism' with this
effect; their WAN broadcast protocol corresponds to SINTRA's consistent
channel combined with such a stability mechanism."

This module is that combination.  On top of each consistent-channel
delivery, parties gossip signed acknowledgment vectors (their per-sender
delivered counts).  A slot ``(sender, seq)`` is **stable** once ``t + 1``
distinct parties have acknowledged delivering it: at least one of them is
honest, and by consistency every party that ever delivers the slot
delivers the same payload — so a stable message is both agreed-upon and
durable (an honest holder can always re-serve it).

The stable deliveries form a second, lagging output stream
(:attr:`StabilizedConsistentChannel.stable_outputs`), in per-sender FIFO
order.  Applications needing cross-party agreement act on the stable
stream; latency-tolerant ones read the raw stream.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.channel.consistent_channel import ConsistentChannel
from repro.core.protocol import Context

MSG_ACK = "stab-ack"


class StabilizedConsistentChannel(ConsistentChannel):
    """Consistent channel + the external stability mechanism."""

    kind = "stab-consistent"

    def __init__(self, ctx: Context, pid: str, max_pending: Optional[int] = None):
        super().__init__(ctx, pid, max_pending=max_pending)
        #: the stable (agreed-delivered) output stream
        self.stable_outputs = ctx.new_queue()
        #: (sender, seq) -> payload, held until stability
        self._held: Dict[Tuple[int, int], bytes] = {}
        #: raw-delivery time per held slot, for the stability-lag phase
        self._held_since: Dict[Tuple[int, int], float] = {}
        #: acker -> per-sender delivered counts (cumulative vector)
        self._ack_vectors: Dict[int, Dict[int, int]] = {}
        #: next slot per sender to be released as stable
        self._stable_next: Dict[int, int] = {j: 0 for j in range(ctx.n)}
        self.stable_deliveries: List[Tuple[int, bytes]] = []

    # -- intercept deliveries to gossip acknowledgment vectors ---------------------

    def _on_instance_delivered(self, bc, payload: bytes) -> None:
        sender = bc.sender
        seq = self._seq[sender]  # sequence number being delivered now
        before = len(self.deliveries)
        super()._on_instance_delivered(bc, payload)
        if len(self.deliveries) > before:  # an app payload was delivered
            self._held[(sender, seq)] = self.deliveries[-1][1]
            if self.obs.enabled:
                self._held_since[(sender, seq)] = self.ctx.now()
        if not self._terminated:
            # gossip the updated cumulative vector (covers close markers too)
            vector = [self._seq[j] for j in range(self.ctx.n)]
            self.send_all(MSG_ACK, vector)
            self._consider_stable()

    # -- acknowledgment handling ------------------------------------------------------

    def on_message(self, sender: int, mtype: str, payload: Any) -> None:
        if mtype != MSG_ACK:
            super().on_message(sender, mtype, payload)
            return
        if self._terminated:
            return
        if not isinstance(payload, list) or len(payload) != self.ctx.n:
            return
        if not all(isinstance(v, int) and v >= 0 for v in payload):
            return
        if self.obs.enabled:
            self.obs.count("stab.acks")
        current = self._ack_vectors.setdefault(sender, {j: 0 for j in range(self.ctx.n)})
        for j, count in enumerate(payload):
            # vectors are cumulative: only monotone progress counts
            current[j] = max(current[j], count)
        self._consider_stable()

    def _consider_stable(self) -> None:
        """Release slots acknowledged by t + 1 parties, in FIFO order."""
        changed = True
        while changed:
            changed = False
            for sender in range(self.ctx.n):
                seq = self._stable_next[sender]
                ackers = sum(
                    1
                    for acker, vector in self._ack_vectors.items()
                    if acker != self.ctx.node_id and vector.get(sender, 0) > seq
                )
                # own delivery counts as one acknowledgment (our broadcast
                # ack loops back too; count ourselves exactly once)
                if self._seq[sender] > seq:
                    ackers += 1
                if ackers <= self.ctx.t:
                    continue
                self._stable_next[sender] = seq + 1
                payload = self._held.pop((sender, seq), None)
                if payload is not None:
                    if self.obs.enabled:
                        self.obs.count("stab.stable_deliveries")
                        held_at = self._held_since.pop((sender, seq), None)
                        if held_at is not None:
                            # Delivery-to-stability lag: the price of the
                            # external agreement the paper describes.
                            self.obs.observe(
                                "phase.stab.lag", self.ctx.now() - held_at
                            )
                    self.stable_deliveries.append((sender, payload))
                    self.ctx.effect(self.stable_outputs.put, payload)
                changed = True

    # -- API ---------------------------------------------------------------------------

    def receive_stable(self) -> Any:
        """Future resolving with the next *stable* payload."""
        return self.stable_outputs.get()

    def can_receive_stable(self) -> bool:
        return self.stable_outputs.can_get()

    def stability_lag(self) -> int:
        """Messages delivered locally but not yet known stable."""
        return len(self._held)
