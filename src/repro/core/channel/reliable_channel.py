"""Reliable channel: aggregated Bracha broadcasts (paper Sec. 2.7).

Provides the ``Channel`` interface over ``n`` parallel reliable-broadcast
instances: *agreement* for every delivered message, but no ordering across
messages.  No public-key operations at all, which makes it the fastest
channel in most of the paper's settings (Table 1).
"""

from __future__ import annotations

from repro.core.broadcast.reliable import ReliableBroadcast
from repro.core.channel.aggregated import BroadcastChannel


class ReliableChannel(BroadcastChannel):
    """Aggregated reliable broadcast."""

    broadcast_cls = ReliableBroadcast
    kind = "reliable"
