"""Secure causal atomic broadcast channel (paper Secs. 2.6 and 3.4).

Atomic broadcast plus *confidentiality until ordering*: payloads are
encrypted under the channel's group public key (the Shoup-Gennaro TDH2
threshold cryptosystem), so their content stays hidden until their
position in the delivery sequence is fixed — which yields a causal order
even against Byzantine parties (Reiter-Birman).  The cryptosystem's CCA2
security prevents a corrupted party from transforming an observed
ciphertext into anything related to the payload.

Operation: ``send`` encrypts and broadcasts the ciphertext on the
underlying atomic channel; whenever the channel delivers a ciphertext,
every party releases a decryption share in one additional exchange, and
the cleartext is delivered once ``t + 1`` valid shares combine.
Cleartexts are released strictly in ciphertext-delivery order.

An entity outside the group can have a message broadcast confidentially:
it encrypts under the channel public key (:meth:`SecureAtomicChannel.
encrypt`) and hands the ciphertext to sufficiently many group members, who
call :meth:`send_ciphertext` without ever seeing the cleartext.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.common import rng as rng_mod
from repro.common.encoding import encode
from repro.common.errors import InvalidCiphertext, ProtocolError
from repro.core.channel.atomic import KIND_CIPHER, AtomicChannel
from repro.core.protocol import Context
from repro.crypto.threshold_enc import Ciphertext, TDH2Scheme

MSG_DEC_SHARE = "dec"


class SecureAtomicChannel(AtomicChannel):
    """One party's endpoint of the secure causal atomic broadcast channel."""

    kind = "secure"

    def __init__(self, ctx: Context, pid: str, **kwargs: Any):
        super().__init__(ctx, pid, **kwargs)
        #: ciphertexts in delivery order, exposed via receive_ciphertext()
        self.ciphertexts = ctx.new_queue()
        self._dec_order = 0  # index assigned to the next delivered ciphertext
        self._pending_ctxt: Dict[int, Ciphertext] = {}
        self._dec_shares: Dict[int, Dict[int, bytes]] = {}
        self._plain: Dict[int, bytes] = {}
        self._next_release = 0
        self._sent_count = 0
        #: ciphertext-delivery time per index, for the decrypt-phase lag
        self._ctxt_times: Dict[int, float] = {}

    # -- encryption ------------------------------------------------------------------

    @staticmethod
    def encrypt(
        scheme: TDH2Scheme,
        pid: str,
        message: bytes,
        rng: Optional[random.Random] = None,
    ) -> bytes:
        """Encrypt ``message`` for the channel ``pid`` under the group key.

        Usable by entities outside the group that only know the channel's
        public key.  Returns the serialized ciphertext.  Without an
        explicit ``rng`` the encryption randomness comes from OS entropy
        (the right default for a real client); pass a seeded stream for
        reproducible runs.
        """
        rng = rng or rng_mod.fresh()
        return scheme.encrypt(message, encode(("sac", pid)), rng).to_bytes()

    def _submit(self, data: bytes) -> None:
        # Deterministic per-(party, sequence) encryption randomness keeps
        # simulation runs reproducible; a deployment would use os.urandom.
        rng = random.Random(
            encode(("sac-rng", self.pid, self.ctx.node_id, self._sent_count))
        )
        self._sent_count += 1
        if self.obs.enabled:
            self.obs.count("secure.encrypted")
        ctxt = self.encrypt(self.ctx.crypto.enc, self.pid, data, rng)
        self._enqueue_own(KIND_CIPHER, ctxt)

    def send_ciphertext(self, ciphertext: bytes) -> None:
        """Broadcast an externally produced ciphertext (paper Sec. 3.4)."""
        if not isinstance(ciphertext, (bytes, bytearray)):
            raise ProtocolError("ciphertext must be a byte string")
        data = bytes(ciphertext)
        Ciphertext.from_bytes(data)  # fail fast on malformed framing
        self.ctx.api(lambda: self._enqueue_own(KIND_CIPHER, data))

    # -- ciphertext API ---------------------------------------------------------------

    def receive_ciphertext(self) -> Any:
        """Future resolving with the next *ordered but undecrypted* payload."""
        return self.ciphertexts.get()

    def can_receive_ciphertext(self) -> bool:
        return self.ciphertexts.can_get()

    # -- intercept atomic deliveries ------------------------------------------------------

    def _handle_delivered_payload(
        self, origin: int, seq: int, kind: int, data: bytes
    ) -> None:
        if kind != KIND_CIPHER:
            # Plain payloads (e.g. from a misbehaving sender using the app
            # kind) pass straight through, preserving channel liveness.
            self.deliveries.append((origin, seq, data))
            self._emit_output(data)
            return
        index = self._dec_order
        self._dec_order += 1
        try:
            ctxt = Ciphertext.from_bytes(data)
        except InvalidCiphertext:
            ctxt = None
        scheme = self.ctx.crypto.enc
        # The label must bind the ciphertext to *this* channel: a ciphertext
        # made for another context is invalid here even if its NIZK holds.
        if ctxt is not None and ctxt.label != encode(("sac", self.pid)):
            ctxt = None
        if ctxt is None or not self.ctx.crypto.accel.ciphertext_ok(scheme, ctxt):
            # An invalid ciphertext is delivered as nothing; mark the slot
            # so in-order release does not stall on it.
            self._plain[index] = None
            self._release_in_order()
            return
        self._pending_ctxt[index] = ctxt
        if self.obs.enabled:
            # The ciphertext's position is now fixed; the decrypt phase
            # (share exchange until cleartext release) starts here.
            self._ctxt_times[index] = self.ctx.now()
            self.obs.count("secure.dec_shares_sent")
        self.ctx.effect(self.ciphertexts.put, data)
        share = self.ctx.crypto.enc_holder.decryption_share(
            ctxt, verifier=self.ctx.crypto.accel
        )
        self.send_all(MSG_DEC_SHARE, (index, share))
        self._consume_shares(index)

    # -- decryption-share exchange ----------------------------------------------------------

    def on_message(self, sender: int, mtype: str, payload: Any) -> None:
        if mtype == MSG_DEC_SHARE:
            if self.halted:
                return
            index, share = payload
            if not (isinstance(index, int) and index >= 0 and isinstance(share, bytes)):
                return
            self._dec_shares.setdefault(index, {})[sender + 1] = share
            self._consume_shares(index)
            return
        super().on_message(sender, mtype, payload)

    def _consume_shares(self, index: int) -> None:
        ctxt = self._pending_ctxt.get(index)
        if ctxt is None or index in self._plain:
            return
        scheme = self.ctx.crypto.enc
        shares = self._dec_shares.get(index, {})
        # Invalid shares stay buffered (the verified-result cache makes
        # re-checking them free), preserving the unaccelerated semantics.
        valid, _bad = self.ctx.crypto.accel.enc_quorum(scheme, ctxt, shares)
        if len(valid) < scheme.k:
            return
        self._plain[index] = scheme.combine(
            ctxt, valid, verifier=self.ctx.crypto.accel
        )
        if self.obs.enabled:
            self.obs.count("secure.combined")
            started = self._ctxt_times.pop(index, None)
            if started is not None:
                self.obs.observe("phase.secure.decrypt", self.ctx.now() - started)
        self._release_in_order()

    def _release_in_order(self) -> None:
        while self._next_release in self._plain:
            data = self._plain.pop(self._next_release)
            self._pending_ctxt.pop(self._next_release, None)
            self._dec_shares.pop(self._next_release, None)
            if data is not None:  # None marks an invalid ciphertext slot
                self.deliveries.append((-1, self._next_release, data))
                self._emit_output(data)
            self._next_release += 1
        self._maybe_finish_late()

    # -- termination: drain pending decryptions first ---------------------------------------------

    def _finish(self) -> None:
        if self._next_release >= self._dec_order and not self._pending_ctxt:
            super()._finish()
        # else: stay alive handling "dec" messages; _maybe_finish_late
        # terminates once everything pending has been released.
        self._closing_now = True

    def _maybe_finish_late(self) -> None:
        if getattr(self, "_closing_now", False) and not self._pending_ctxt:
            super()._finish()
