"""Optimistic atomic broadcast — the paper's proposed optimization.

The conclusion of the paper (Sec. 6) observes that SINTRA's atomic
broadcast pays for full Byzantine agreement in every round, *even when all
servers are honest and timely*, and points to the optimistic protocols of
Castro-Liskov and Kursawe-Shoup: run a much simpler sequencer-based
algorithm while things look fine, and fall back to the randomized
machinery only when the sequencer is suspected.  This module implements
that extension.

**Optimistic phase** (epoch ``e``, sequencer ``e mod n``): a party wanting
to broadcast sends its signed message to all; the sequencer batches
initiated messages into consecutively numbered *slots* and proposes each
slot to the group.  A slot commits through two all-to-all exchanges
carrying threshold-signature shares:

1. ``prepare`` — shares on ``(pid, e, s, digest)``; ``n - t`` of them form
   the *prepare certificate*, which makes two conflicting slot contents
   impossible (quorum intersection);
2. ``commit`` — shares on the commit string, sent once the prepare
   certificate is assembled; a party delivers slot ``s`` (in contiguous
   order) once it holds the ``n - t``-share *commit certificate*.

This costs two rounds of message exchange per batch — the cost of a single
Bracha reliable broadcast, exactly the paper's target ("reduce the cost of
atomic broadcast essentially to a single reliable broadcast per delivered
message") — and only cheap signature shares, no Byzantine agreement.

**Suspicion** is liveness-only (the asynchronous safety argument never
uses clocks): a party whose own initiated message is not delivered within
a timeout complains; complaints are amplified (a party seeing ``t + 1``
complaints complains too) and at ``t + 1`` complaints a party *wedges* the
epoch: it stops the optimistic phase and reports its contiguous delivered
prefix, with the commit certificate of its last slot as proof.

**Recovery** runs one multi-valued Byzantine agreement on a batch of
``n - t`` signed, certificate-backed wedge statements and defines the
epoch's *cut* as the maximal certified prefix in the batch:

* **safety**: a party delivered slot ``s`` only with a commit certificate,
  so ``t + 1`` honest parties committed ``s``; any ``n - t`` wedge batch
  intersects them, hence the cut covers every optimistically delivered
  slot — nobody has over-delivered.
* **liveness**: the cut's certificate proves ``t + 1`` honest parties hold
  the whole prefix, so missing slots are fetched from them and verified
  against the certificate digests.

After delivering exactly the cut, the epoch advances, the sequencer
rotates, and undelivered messages are re-initiated.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.common.encoding import decode, encode
from repro.common.errors import EncodingError, ProtocolError
from repro.core.agreement.multivalued import ArrayAgreement
from repro.core.channel.base import Channel
from repro.core.protocol import Context
from repro.crypto.hashing import sha256
from repro.crypto.threshold_sig import combine_optimistically

MSG_INITIATE = "initiate"
MSG_PROPOSE = "propose"
MSG_PREPARE = "prepare"
MSG_COMMIT = "commit"
MSG_COMPLAIN = "complain"
MSG_WEDGE = "wedge"
MSG_FETCH = "fetch"
MSG_SLOT_DATA = "slot-data"

KIND_APP = 0
KIND_CLOSE = 1

SIGN_DOMAIN = "sintra.opt-atomic"

#: an application record: (origin, seq, kind, data, origin_signature)
Entry = Tuple[int, int, int, bytes, int]


def entry_string(pid: str, origin: int, seq: int, kind: int, data: bytes) -> bytes:
    """What the origin signs to authorize a payload on this channel."""
    return encode(("opt-entry", pid, origin, seq, kind, data))


def prepare_string(pid: str, epoch: int, slot: int, digest: bytes) -> bytes:
    return encode(("opt-prepare", pid, epoch, slot, digest))


def commit_string(pid: str, epoch: int, slot: int, digest: bytes) -> bytes:
    return encode(("opt-commit", pid, epoch, slot, digest))


def wedge_string(pid: str, epoch: int, prefix: int, digest: bytes) -> bytes:
    return encode(("opt-wedge", pid, epoch, prefix, digest))


def slot_digest(entries: List[Entry]) -> bytes:
    return sha256(encode(list(entries)))


class _SlotState:
    """Per-slot bookkeeping during the optimistic phase."""

    __slots__ = (
        "entries", "digest", "prepare_shares", "prepare_cert",
        "commit_shares", "commit_cert", "prepared", "committed",
    )

    def __init__(self) -> None:
        self.entries: Optional[List[Entry]] = None
        self.digest: Optional[bytes] = None
        self.prepare_shares: Dict[int, bytes] = {}
        self.prepare_cert: Optional[bytes] = None
        self.commit_shares: Dict[int, bytes] = {}
        self.commit_cert: Optional[bytes] = None
        self.prepared = False  # this party sent its prepare share
        self.committed = False  # this party sent its commit share


class OptimisticAtomicChannel(Channel):
    """Atomic broadcast with an optimistic sequencer-based fast path.

    Drop-in alternative to :class:`~repro.core.channel.atomic.
    AtomicChannel` (same ``Channel`` API and delivery semantics).
    ``suspect_timeout`` is the liveness-only suspicion delay in seconds.
    """

    kind = "optimistic"

    def __init__(
        self,
        ctx: Context,
        pid: str,
        suspect_timeout: float = 5.0,
        max_batch: int = 8,
        window: int = 2,
        max_pending=None,
    ):
        super().__init__(ctx, pid, max_pending=max_pending)
        self.suspect_timeout = suspect_timeout
        self.max_batch = max_batch
        #: sequencer flow control: at most this many slots in flight; a
        #: backlog accumulating behind the window is what fills batches.
        self.window = max(1, window)
        self.epoch = 0
        self._delivered: Set[Tuple[int, int]] = set()
        self._close_origins: Set[int] = set()
        self._own_next_seq = 0
        #: own records not yet delivered: (origin, seq, kind, data, sig)
        self._pending: List[Entry] = []
        self.deliveries: List[Tuple[int, int, bytes]] = []
        self.epochs_used = 1
        self.slots_delivered = 0
        #: finished epochs' slot states, retained to serve laggard fetches
        self._slot_archive: Dict[int, Dict[int, "_SlotState"]] = {}
        self._archive_depth = 4
        self._reset_epoch_state()

    # -- epoch state -------------------------------------------------------------

    def _reset_epoch_state(self) -> None:
        if self.obs.enabled:
            # Every epoch starts on the optimistic fast path.
            self.obs.phase(self.obs_scope, "opt.optimistic")
        self._slots: Dict[int, _SlotState] = {}
        self._slot_times: Dict[int, float] = {}
        self._next_deliver = 0  # contiguous delivered prefix within the epoch
        self._initiated: Dict[Tuple[int, int], Entry] = {}
        self._assigned: Set[Tuple[int, int]] = set()  # sequencer-side
        self._next_assign = 0  # sequencer-side slot counter
        self._complained = False
        self._complaints: Set[int] = set()
        self._wedged = False
        self._wedges: Dict[int, tuple] = {}
        self._cut: Optional[int] = None
        self._cut_mvba: Optional[ArrayAgreement] = None
        self._fetched: Dict[int, List[Entry]] = {}
        self._timer = None

    @property
    def sequencer(self) -> int:
        return self.epoch % self.ctx.n

    def _slot(self, s: int) -> _SlotState:
        return self._slots.setdefault(s, _SlotState())

    # -- submitting payloads ----------------------------------------------------------

    def _pending_count(self) -> int:
        return len(self._pending)

    def _submit(self, data: bytes) -> None:
        self._enqueue_own(KIND_APP, data)

    def _submit_close(self) -> None:
        self._enqueue_own(KIND_CLOSE, b"")

    def _enqueue_own(self, kind: int, data: bytes) -> None:
        origin, seq = self.ctx.node_id, self._own_next_seq
        self._own_next_seq += 1
        sig = self.ctx.crypto.sign(
            SIGN_DOMAIN, entry_string(self.pid, origin, seq, kind, data)
        )
        entry: Entry = (origin, seq, kind, data, sig)
        self._pending.append(entry)
        self._initiate(entry)
        self._arm_timer()

    def _initiate(self, entry: Entry) -> None:
        self.send_all(MSG_INITIATE, (self.epoch, entry))

    # -- suspicion timer (liveness only) ---------------------------------------------------

    def _watching(self) -> bool:
        """Is there work the sequencer should be making progress on?

        Both own pending messages and messages *seen initiated* by others
        count: every honest party watches over every initiated message, so
        that ``t + 1`` complaints can accumulate even when only one party
        is sending.
        """
        return bool(self._pending) or bool(self._initiated)

    def _arm_timer(self) -> None:
        if self._timer is not None or not self._watching() or self._terminated:
            return
        epoch = self.epoch
        self._timer = self.ctx.set_timer(
            self.suspect_timeout, lambda: self._on_timeout(epoch)
        )

    def _on_timeout(self, epoch: int) -> None:
        self._timer = None
        if self._terminated or epoch != self.epoch or self._wedged:
            return
        if self._watching():
            # Re-initiate own messages (an epoch-advance race may have lost
            # the first initiation) and suspect the sequencer.  The
            # complaint is re-broadcast on every timeout: parties that were
            # still finishing the previous epoch dropped the first copy.
            for entry in self._pending:
                self._initiate(entry)
            self._complained = True
            self.send_all(MSG_COMPLAIN, self.epoch)
        self._arm_timer()

    def _send_complaint(self) -> None:
        if not self._complained:
            self._complained = True
            if self.obs.enabled:
                self.obs.count("opt.complaints")
            self.send_all(MSG_COMPLAIN, self.epoch)

    # -- message dispatch ----------------------------------------------------------------------

    def on_message(self, sender: int, mtype: str, payload: Any) -> None:
        if self.halted:
            return
        if mtype == MSG_INITIATE:
            self._on_initiate(sender, payload)
        elif mtype == MSG_PROPOSE:
            self._on_propose(sender, payload)
        elif mtype == MSG_PREPARE:
            self._on_prepare(sender, payload)
        elif mtype == MSG_COMMIT:
            self._on_commit(sender, payload)
        elif mtype == MSG_COMPLAIN:
            self._on_complain(sender, payload)
        elif mtype == MSG_WEDGE:
            self._on_wedge(sender, payload)
        elif mtype == MSG_FETCH:
            self._on_fetch(sender, payload)
        elif mtype == MSG_SLOT_DATA:
            self._on_slot_data(sender, payload)

    # -- the optimistic phase ----------------------------------------------------------------------

    def _check_entry(self, entry: Any) -> Optional[Entry]:
        if not (isinstance(entry, tuple) and len(entry) == 5):
            return None
        origin, seq, kind, data, sig = entry
        if not (isinstance(origin, int) and isinstance(seq, int) and seq >= 0):
            return None
        if kind not in (KIND_APP, KIND_CLOSE) or not isinstance(data, bytes):
            return None
        if not isinstance(sig, int) or not self.ctx.crypto.verify_party(
            origin, SIGN_DOMAIN, entry_string(self.pid, origin, seq, kind, data), sig
        ):
            return None
        return (origin, seq, kind, data, sig)

    def _on_initiate(self, sender: int, payload: Any) -> None:
        epoch, entry = payload
        if epoch != self.epoch or self._wedged:
            return
        entry = self._check_entry(entry)
        if entry is None or entry[0] != sender:
            return
        key = (entry[0], entry[1])
        if key in self._delivered:
            return
        self._initiated[key] = entry
        self._arm_timer()  # watch over the message's progress
        if self.ctx.node_id == self.sequencer:
            self._assign_slots()

    def _assign_slots(self) -> None:
        """Sequencer: batch initiated messages into the next slot(s).

        At most :attr:`window` slots are in flight; messages initiated
        while the window is full accumulate and leave in one batch — the
        sequencer's natural batching under load.
        """
        if self._wedged:
            return
        while self._next_assign - self._next_deliver < self.window:
            batch: List[Entry] = []
            for key, entry in self._initiated.items():
                if key in self._assigned or key in self._delivered:
                    continue
                self._assigned.add(key)
                batch.append(entry)
                if len(batch) >= self.max_batch:
                    break
            if not batch:
                return
            s = self._next_assign
            self._next_assign += 1
            self.send_all(MSG_PROPOSE, (self.epoch, s, batch))

    def _on_propose(self, sender: int, payload: Any) -> None:
        epoch, s, batch = payload
        if epoch != self.epoch or sender != self.sequencer or self._wedged:
            return
        if not isinstance(s, int) or s < 0 or not isinstance(batch, list):
            return
        state = self._slot(s)
        if state.prepared or state.entries is not None:
            return  # at most one proposal per slot counts
        entries: List[Entry] = []
        for raw in batch:
            entry = self._check_entry(raw)
            if entry is None or (entry[0], entry[1]) in self._delivered:
                return  # a slot with bad entries is ignored entirely
            entries.append(entry)
        if not entries:
            return
        state.entries = entries
        state.digest = slot_digest(entries)
        state.prepared = True
        if self.obs.enabled:
            # Commit phase of slot s: proposal seen -> local delivery.
            self._slot_times[s] = self.ctx.now()
        share = self.ctx.crypto.aba_signer.sign_share(
            prepare_string(self.pid, epoch, s, state.digest)
        )
        self.send_all(MSG_PREPARE, (epoch, s, state.digest, share))
        # Shares may have arrived before the proposal did.
        self._try_prepare_cert(epoch, s, state.digest, state)
        self._maybe_commit_cert(epoch, s, state)

    def _on_prepare(self, sender: int, payload: Any) -> None:
        epoch, s, digest, share = payload
        if epoch != self.epoch or self._wedged:
            return
        if not (isinstance(s, int) and isinstance(digest, bytes) and isinstance(share, bytes)):
            return
        state = self._slot(s)
        if state.digest is not None and digest != state.digest:
            return  # conflicts with the sequencer's proposal we saw
        scheme = self.ctx.crypto.aba_scheme
        try:
            if scheme.share_index(share) != sender + 1:
                return
        except Exception:
            return
        state.prepare_shares[sender + 1] = share
        self._try_prepare_cert(epoch, s, digest, state)

    def _try_prepare_cert(self, epoch: int, s: int, digest: bytes, state: _SlotState) -> None:
        scheme = self.ctx.crypto.aba_scheme
        if state.commit_cert is not None or state.committed:
            return
        if state.digest is None or len(state.prepare_shares) < scheme.k:
            return
        cert = combine_optimistically(
            scheme, prepare_string(self.pid, epoch, s, state.digest),
            state.prepare_shares, verifier=self.ctx.crypto.accel,
        )
        if cert is None:
            return
        state.prepare_cert = cert
        state.committed = True
        share = self.ctx.crypto.aba_signer.sign_share(
            commit_string(self.pid, epoch, s, state.digest)
        )
        self.send_all(MSG_COMMIT, (epoch, s, state.digest, share))

    def _on_commit(self, sender: int, payload: Any) -> None:
        epoch, s, digest, share = payload
        if epoch != self.epoch:
            return
        if not (isinstance(s, int) and isinstance(digest, bytes) and isinstance(share, bytes)):
            return
        state = self._slot(s)
        if state.digest is not None and digest != state.digest:
            return
        scheme = self.ctx.crypto.aba_scheme
        try:
            if scheme.share_index(share) != sender + 1:
                return
        except Exception:
            return
        state.commit_shares[sender + 1] = share
        self._maybe_commit_cert(epoch, s, state)

    def _maybe_commit_cert(self, epoch: int, s: int, state: _SlotState) -> None:
        scheme = self.ctx.crypto.aba_scheme
        if state.commit_cert is not None or len(state.commit_shares) < scheme.k:
            return
        if state.digest is None:
            return  # cannot check the certificate without the proposal
        cert = combine_optimistically(
            scheme, commit_string(self.pid, epoch, s, state.digest),
            state.commit_shares, verifier=self.ctx.crypto.accel,
        )
        if cert is None:
            return
        state.commit_cert = cert
        if not state.committed:
            # This party assembled a full commit certificate from others'
            # shares before its own prepare certificate completed (its
            # links were slow), so it never broadcast a commit share.  It
            # must still do so: with t parties withholding shares, the
            # honest parties number exactly the quorum k = n - t, so every
            # honest share is needed for every *other* party's certificate
            # — skipping here starves slower parties forever.  Sound even
            # without a prepare certificate: the commit certificate itself
            # proves the digest was prepared.
            state.committed = True
            share = self.ctx.crypto.aba_signer.sign_share(
                commit_string(self.pid, epoch, s, state.digest)
            )
            self.send_all(MSG_COMMIT, (epoch, s, state.digest, share))
        self._deliver_ready_slots()

    def _deliver_ready_slots(self) -> None:
        """Deliver contiguously committed slots (cut-bounded in recovery)."""
        while True:
            if self._terminated:
                # The previous slot completed the close quorum.  Stop even
                # if later slots already hold commit certificates: the
                # channel's final sequence must end at the same slot for
                # every honest party, and parties differ in which later
                # certificates they happen to hold at that moment.
                return
            limit = self._cut if self._cut is not None else None
            s = self._next_deliver
            if limit is not None and s >= limit:
                self._finish_epoch()
                return
            state = self._slots.get(s)
            if state is None or state.commit_cert is None or state.entries is None:
                return
            if self.obs.enabled:
                self.obs.count("opt.slots_delivered")
                proposed_at = self._slot_times.pop(s, None)
                if proposed_at is not None:
                    self.obs.observe(
                        "phase.opt.commit", self.ctx.now() - proposed_at
                    )
            self._deliver_slot(state.entries)
            self._next_deliver += 1
            self.slots_delivered += 1
            if self.ctx.node_id == self.sequencer and not self._wedged:
                self._assign_slots()  # the window advanced

    def _deliver_slot(self, entries: List[Entry]) -> None:
        for origin, seq, kind, data, _ in entries:
            key = (origin, seq)
            if key in self._delivered:
                continue
            self._delivered.add(key)
            self._initiated.pop(key, None)
            self._pending = [e for e in self._pending if (e[0], e[1]) != key]
            if kind == KIND_CLOSE:
                self._close_origins.add(origin)
            else:
                self.deliveries.append((origin, seq, data))
                self._emit_output(data)
        if not self._pending and self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if len(self._close_origins) > self.ctx.t and self._cut is None:
            self._terminate()

    # -- complaints and wedging --------------------------------------------------------------------

    def _on_complain(self, sender: int, payload: Any) -> None:
        if payload != self.epoch:
            return
        self._complaints.add(sender)
        if len(self._complaints) > self.ctx.t:
            self._send_complaint()  # amplification
            self._enter_recovery()

    def _enter_recovery(self) -> None:
        if self._wedged or self._terminated:
            return
        self._wedged = True
        if self.obs.enabled:
            self.obs.count("opt.recoveries")
            # Fast path abandoned: time from here to the epoch's end is
            # the recovery phase (wedge quorum + cut MVBA + fetches).
            self.obs.phase(self.obs_scope, "opt.recovery")
        prefix = self._next_deliver
        if prefix > 0:
            last = self._slots[prefix - 1]
            digest, cert = last.digest, last.commit_cert
        else:
            digest, cert = b"", None
        sig = self.ctx.crypto.sign(
            SIGN_DOMAIN, wedge_string(self.pid, self.epoch, prefix, digest)
        )
        self.send_all(MSG_WEDGE, (self.epoch, prefix, digest, cert, sig))

    def _valid_wedge(self, party: int, payload: Any) -> Optional[tuple]:
        epoch, prefix, digest, cert, sig = payload
        if epoch != self.epoch:
            return None
        if not (isinstance(prefix, int) and prefix >= 0 and isinstance(digest, bytes)):
            return None
        if not isinstance(sig, int) or not self.ctx.crypto.verify_party(
            party, SIGN_DOMAIN, wedge_string(self.pid, epoch, prefix, digest), sig
        ):
            return None
        if prefix > 0:
            if not isinstance(cert, bytes) or not self.ctx.crypto.accel.sig_ok(
                self.ctx.crypto.aba_scheme,
                commit_string(self.pid, epoch, prefix - 1, digest),
                cert,
            ):
                return None
        return (party, prefix, digest, cert, sig)

    def _on_wedge(self, sender: int, payload: Any) -> None:
        if self._cut is not None:
            return
        wedge = self._valid_wedge(sender, payload)
        if wedge is None or sender in self._wedges:
            return
        self._wedges[sender] = wedge
        quorum = self.ctx.n - self.ctx.t
        if self._wedged and self._cut_mvba is None and len(self._wedges) >= quorum:
            batch = list(self._wedges.values())[:quorum]
            epoch = self.epoch
            self._cut_mvba = ArrayAgreement(
                self.ctx,
                f"{self.pid}/e{epoch}/cut",
                validator=self._make_cut_validator(epoch),
            )
            self._cut_mvba.on_decide = self._on_cut_decided
            self._cut_mvba.propose(encode([list(w) for w in batch]))

    def _make_cut_validator(self, epoch: int):
        def is_valid(value: bytes) -> bool:
            return self._decode_cut(epoch, value) is not None

        return is_valid

    def _decode_cut(self, epoch: int, value: bytes) -> Optional[int]:
        """Validate a wedge batch; return the cut (max certified prefix)."""
        if epoch != self.epoch:
            return None
        try:
            batch = decode(value)
        except EncodingError:
            return None
        quorum = self.ctx.n - self.ctx.t
        if not isinstance(batch, list) or len(batch) != quorum:
            return None
        seen: Set[int] = set()
        cut = 0
        for raw in batch:
            if not (isinstance(raw, list) and len(raw) == 5):
                return None
            party = raw[0]
            if not isinstance(party, int) or party in seen:
                return None
            wedge = self._valid_wedge(party, (epoch, *raw[1:]))
            if wedge is None:
                return None
            seen.add(party)
            cut = max(cut, wedge[1])
        return cut

    # -- recovery: agree on the cut, fetch, advance ---------------------------------------------------

    def _on_cut_decided(self, mvba: ArrayAgreement, value: bytes, proof) -> None:
        if self._terminated:
            return
        cut = self._decode_cut(self.epoch, value)
        if cut is None:
            raise ProtocolError("agreed wedge batch failed validation")
        self._cut = cut
        self._deliver_ready_slots()
        self._request_missing()

    def _request_missing(self) -> None:
        if self._cut is None or self._terminated:
            return
        missing = False
        for s in range(self._next_deliver, self._cut):
            state = self._slots.get(s)
            if state is None or state.commit_cert is None or state.entries is None:
                missing = True
                self.send_all(MSG_FETCH, (self.epoch, s))
        if missing:
            # Holders may still be assembling their certificates; retry.
            epoch = self.epoch
            self.ctx.set_timer(
                self.suspect_timeout / 2,
                lambda: self._request_missing() if epoch == self.epoch else None,
            )

    def _on_fetch(self, sender: int, payload: Any) -> None:
        epoch, s = payload
        if not isinstance(epoch, int) or not isinstance(s, int):
            return
        # Serve fetches for the current epoch AND recently finished ones:
        # a laggard still recovering epoch e must be able to fetch from
        # parties that already advanced past it.
        if epoch == self.epoch:
            state = self._slots.get(s)
        else:
            state = self._slot_archive.get(epoch, {}).get(s)
        if state is None or state.entries is None or state.commit_cert is None:
            return
        self.unicast(
            sender,
            MSG_SLOT_DATA,
            (epoch, s, [list(e) for e in state.entries], state.digest, state.commit_cert),
        )

    def _on_slot_data(self, sender: int, payload: Any) -> None:
        epoch, s, raw_entries, digest, cert = payload
        if epoch != self.epoch or self._cut is None or not isinstance(s, int):
            return
        if not (isinstance(raw_entries, list) and isinstance(digest, bytes)
                and isinstance(cert, bytes)):
            return
        state = self._slot(s)
        if state.commit_cert is not None and state.entries is not None:
            return
        entries: List[Entry] = []
        for raw in raw_entries:
            if not isinstance(raw, list):
                return
            entry = self._check_entry(tuple(raw))
            if entry is None:
                return
            entries.append(entry)
        if slot_digest(entries) != digest:
            return
        if not self.ctx.crypto.accel.sig_ok(
            self.ctx.crypto.aba_scheme, commit_string(self.pid, epoch, s, digest), cert
        ):
            return
        state.entries = entries
        state.digest = digest
        state.commit_cert = cert
        self._deliver_ready_slots()

    def _finish_epoch(self) -> None:
        """Cut reached: rotate the sequencer and re-initiate pending work."""
        if len(self._close_origins) > self.ctx.t:
            self._terminate()
            return
        self._slot_archive[self.epoch] = self._slots
        for old in [e for e in self._slot_archive if e <= self.epoch - self._archive_depth]:
            del self._slot_archive[old]
        self.epoch += 1
        self.epochs_used += 1
        pending = list(self._pending)
        self._reset_epoch_state()
        for entry in pending:
            self._initiate(entry)
        self._arm_timer()
