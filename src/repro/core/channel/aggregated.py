"""Aggregated broadcast channels (paper Sec. 2.7).

Virtual channels that multiplex many instances of a broadcast primitive:
``n`` broadcasts run in parallel, one per sender; whenever the instance of
sender ``j`` with sequence number ``s`` delivers, its payload is handed to
the application and a fresh instance ``(j, s+1)`` is allocated.  These are
*virtual* protocols: they exchange no messages of their own over the
network.

They guarantee weaker properties than atomic broadcast — agreement without
ordering (reliable channel) or only consistency (consistent channel) — and
are the cheap alternative measured in Table 1.

Termination: a party closes by sending a special termination request as
its last message; once requests from ``t + 1`` senders have been
delivered, the still-active broadcasts are aborted and the channel
terminates.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Type

from repro.common.encoding import decode, encode
from repro.common.errors import EncodingError, ProtocolError
from repro.core.broadcast.base import Broadcast
from repro.core.channel.base import Channel
from repro.core.protocol import Context

KIND_APP = 0
KIND_CLOSE = 1


def _frame(kind: int, data: bytes) -> bytes:
    return encode((kind, data))


def _unframe(payload: bytes) -> Optional[Tuple[int, bytes]]:
    try:
        kind, data = decode(payload)
    except (EncodingError, ValueError, TypeError):
        return None
    if kind not in (KIND_APP, KIND_CLOSE) or not isinstance(data, bytes):
        return None
    return kind, data


class BroadcastChannel(Channel):
    """Base of the reliable and consistent channels.

    Subclasses set :attr:`broadcast_cls` to the primitive to aggregate.
    """

    broadcast_cls: Type[Broadcast] = Broadcast  # overridden
    kind = "bcast"

    def __init__(self, ctx: Context, pid: str, max_pending=None):
        super().__init__(ctx, pid, max_pending=max_pending)
        #: active instance per sender
        self._active: Dict[int, Broadcast] = {}
        self._seq: Dict[int, int] = {j: 0 for j in range(ctx.n)}
        #: this party's not-yet-sent backlog (one instance in flight at a time)
        self._backlog: List[bytes] = []
        self._in_flight = False
        self._close_senders: set = set()
        self.deliveries: List[Tuple[int, bytes]] = []  # (sender, payload)
        for j in range(ctx.n):
            self._allocate(j)

    # -- instance management -------------------------------------------------------

    def _allocate(self, j: int) -> None:
        seq = self._seq[j]
        if self.obs.enabled:
            self.obs.count(f"channel.{self.kind}.instances")
        bc = self.broadcast_cls(self.ctx, f"{self.pid}/bc.{seq}", j)
        bc.on_deliver = self._on_instance_delivered
        self._active[j] = bc

    def _on_instance_delivered(self, bc: Broadcast, payload: bytes) -> None:
        if self._terminated:
            return
        j = bc.sender
        self._seq[j] += 1
        self._allocate(j)
        frame = _unframe(payload)
        if frame is not None:
            kind, data = frame
            if kind == KIND_CLOSE:
                self._close_senders.add(j)
                if len(self._close_senders) >= self.ctx.t + 1:
                    self._shutdown()
                    return
            else:
                self.deliveries.append((j, data))
                self._emit_output(data)
        if j == self.ctx.node_id:
            self._in_flight = False
            if self.obs.enabled:
                started = getattr(self, "_in_flight_since", None)
                if started is not None:
                    # One full broadcast instance of our own, send to local
                    # delivery — the per-slot cost of this channel kind.
                    self.obs.observe(
                        f"phase.{self.kind}.slot", self.ctx.now() - started
                    )
                    self._in_flight_since = None
            self._pump()

    # -- sending -----------------------------------------------------------------------

    def _pending_count(self) -> int:
        return len(self._backlog) + (1 if self._in_flight else 0)

    def _submit(self, data: bytes) -> None:
        self._backlog.append(_frame(KIND_APP, data))
        self._pump()

    def _submit_close(self) -> None:
        self._backlog.append(_frame(KIND_CLOSE, b""))
        self._pump()

    def _pump(self) -> None:
        if self._in_flight or not self._backlog or self._terminated:
            return
        self._in_flight = True
        if self.obs.enabled:
            self._in_flight_since = self.ctx.now()
        payload = self._backlog.pop(0)
        self._active[self.ctx.node_id].send(payload)

    # -- termination ------------------------------------------------------------------------

    def _shutdown(self) -> None:
        for bc in self._active.values():
            if not bc.halted:
                bc.abort()
        self._terminate()

    def on_message(self, sender: int, mtype: str, payload: Any) -> None:
        # Virtual protocol: all traffic belongs to the broadcast instances.
        raise ProtocolError(f"unexpected direct message {mtype!r} on channel")
