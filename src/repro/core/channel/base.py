"""The abstract ``Channel`` interface (paper Sec. 3.4).

A channel is a continuous protocol with on-line inputs and outputs: a
party may ``send`` any number of messages and must be prepared to
``receive`` as many payloads as the channel outputs.  Closing follows the
paper's termination discipline: a party signals ``close``; the channel of
a group terminates once ``t + 1`` parties' termination requests have gone
through, so it closes when all honest parties together close it and stays
open while at least one honest party keeps it open.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.common.errors import ChannelCongested, ProtocolError
from repro.core.protocol import Context, Protocol


class Channel(Protocol):
    """Abstract broadcast channel.

    ``max_pending`` bounds the send buffer (``None`` = unbounded): when
    full, ``can_send()`` is false and ``send`` raises
    :class:`~repro.common.errors.ChannelCongested` — the paper's "send may
    block if the channel is congested and all buffers are full;
    applications that do not want to be blocked may call canSend() first".
    """

    #: short channel-kind tag namespacing this channel's observability
    #: instruments (``channel.<kind>.*`` counters, ``phase.<kind>.e2e``)
    kind: str = "channel"

    def __init__(self, ctx: Context, pid: str, max_pending: Optional[int] = None):
        super().__init__(ctx, pid)
        self.outputs = ctx.new_queue()
        self.closed = ctx.new_future()
        #: optional listener called (at delivery-completion time) with each
        #: payload, in delivery order — used by the replication layer.
        self.on_output: Optional[Any] = None
        self.max_pending = max_pending
        self._submitted = 0  # sends accepted but not yet in _pending_count
        self._close_requested = False
        self._terminated = False
        #: submit time of this party's own payloads, for the end-to-end
        #: (send -> local delivery) latency histogram; recording only
        self._send_times: dict = {}

    # -- paper API ----------------------------------------------------------------

    def send(self, message: bytes) -> None:
        """Broadcast ``message`` on the channel (any party, any number)."""
        if self._close_requested:
            raise ProtocolError("cannot send after close")
        if not isinstance(message, (bytes, bytearray)):
            raise ProtocolError("channel payloads are byte strings")
        if not self.can_send():
            raise ChannelCongested(
                f"channel {self.pid!r} send buffer is full "
                f"({self.max_pending} pending)"
            )
        data = bytes(message)
        self._submitted += 1
        if self.obs.enabled:
            self.obs.count(f"channel.{self.kind}.sent")
            self._send_times.setdefault(data, self.ctx.now())

        def run() -> None:
            self._submitted -= 1
            self._submit(data)

        self.ctx.api(run)

    def receive(self) -> Any:
        """Future resolving with the next delivered payload."""
        return self.outputs.get()

    def can_send(self) -> bool:
        if self._close_requested:
            return False
        if self.max_pending is None:
            return True
        return self._submitted + self._pending_count() < self.max_pending

    def _pending_count(self) -> int:
        """Payloads accepted but not yet delivered (subclass hook)."""
        return 0

    def pending(self) -> int:
        """Accepted-but-undelivered payloads (the submit backlog).

        The quantity ``max_pending`` bounds; the batching channel drains
        it by up to ``max_batch`` payloads per agreement round.
        """
        return self._submitted + self._pending_count()

    def can_receive(self) -> bool:
        return self.outputs.can_get()

    def close(self) -> None:
        """Signal that this party is ready to close the channel."""
        if self._close_requested:
            return
        self._close_requested = True
        self.ctx.api(self._submit_close)

    def close_wait(self) -> Any:
        """``close()`` and return the future resolving at termination."""
        self.close()
        return self.closed

    def wait_done(self) -> Any:
        """Future resolving once the channel has terminated."""
        return self.closed

    def is_closed(self) -> bool:
        return self._terminated

    # -- subclass hooks ---------------------------------------------------------------

    def _submit(self, data: bytes) -> None:
        raise NotImplementedError

    def _submit_close(self) -> None:
        raise NotImplementedError

    def _terminate(self) -> None:
        """Close the channel locally (the CLOSE-DONE event)."""
        if not self._terminated:
            self._terminated = True
            if self.obs.enabled:
                self.obs.phase_end(self.obs_scope)  # flush any open phase
            self.ctx.effect(self.closed.resolve, None)
            self.halt()

    def _emit_output(self, data: bytes) -> None:
        """Deliver one payload to the application at completion time."""
        if self.obs.enabled:
            self.obs.count(f"channel.{self.kind}.delivered")
            sent_at = self._send_times.pop(data, None)
            if sent_at is not None:
                self.obs.observe(
                    f"phase.{self.kind}.e2e", self.ctx.now() - sent_at
                )
        self.ctx.effect(self.outputs.put, data)
        if self.on_output is not None:
            self.ctx.effect(self.on_output, data)
