"""Atomic broadcast channel (paper Sec. 2.5).

Guarantees that all honest parties deliver the same *sequence* of payload
messages (agreement + total order) and that a payload known to at least
``f`` parties is delivered after a bounded delay (fairness).  Built, like
the Chandra-Toueg protocol for the crash model, from rounds of multi-valued
Byzantine agreement on message batches:

* in every round each party digitally signs its next message to send
  together with the round number and sends it to all; with nothing of its
  own to send, it adopts and signs a message first signed by another party;
* each party proposes a batch of ``n - f + 1`` properly signed round-``r``
  messages from distinct signers to multi-valued agreement (batch size is
  the configurable parameter; the paper's experiments use ``t + 1``, i.e.
  ``f = n - t``);
* all messages of the agreed batch are delivered in a fixed order — by the
  index of the signing party, which is what produces the two "bands" of
  Figures 4 and 5;
* payloads are identified by (origin, per-origin sequence number), the
  paper's deliberate relaxation of ideal integrity (Sec. 2.5): a bit
  string is delivered at most once per time an honest party sent it, and
  duplicate filtering beyond that is the application's business;
* a party closes the channel by sending a termination request as a regular
  payload; the channel terminates after the round in which ``t + 1``
  parties' requests have been delivered.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.common.encoding import decode, encode
from repro.common.errors import EncodingError, ProtocolError
from repro.core.agreement.multivalued import ORDER_RANDOM, ArrayAgreement
from repro.core.channel.base import Channel
from repro.core.protocol import Context

MSG_QUEUE = "queue"

KIND_APP = 0
KIND_CLOSE = 1
KIND_CIPHER = 2  # used by the secure causal channel subclass

SIGN_DOMAIN = "sintra.atomic"

#: a candidate record: (origin, seq, kind, data)
Record = Tuple[int, int, int, bytes]


def sign_string(pid: str, r: int, record: Record) -> bytes:
    """The string a party signs to put ``record`` forward in round ``r``."""
    origin, seq, kind, data = record
    return encode(("atomic-msg", pid, r, origin, seq, kind, data))


class AtomicChannel(Channel):
    """One party's endpoint of the atomic broadcast channel."""

    kind = "atomic"

    def __init__(
        self,
        ctx: Context,
        pid: str,
        fairness_f: Optional[int] = None,
        order: str = ORDER_RANDOM,
        max_pending: Optional[int] = None,
        resume_round: Optional[int] = None,
        resume_delivered: Optional[Iterable[Tuple[int, int]]] = None,
        resume_close_origins: Optional[Iterable[int]] = None,
        resume_next_seq: int = 0,
    ):
        super().__init__(ctx, pid, max_pending=max_pending)
        n, t = ctx.n, ctx.t
        f = fairness_f if fairness_f is not None else n - t
        if not t + 1 <= f <= n - t:
            raise ProtocolError(f"fairness parameter must be in [t+1, n-t], got {f}")
        self.fairness_f = f
        self.batch_size = n - f + 1
        self.order = order
        if resume_round is not None and resume_round < 1:
            raise ProtocolError(f"resume round must be >= 1, got {resume_round}")
        self.round = 1 if resume_round is None else resume_round
        #: messages this party has sent but that are not yet delivered
        self._own_queue: List[Record] = []
        self._own_next_seq = resume_next_seq
        #: round -> {signer: (record, signature)} in arrival order
        self._candidates: Dict[int, Dict[int, Tuple[Record, int]]] = {}
        #: adoption pool: (origin, seq) -> record, in arrival order
        self._pending: Dict[Tuple[int, int], Record] = {}
        self._delivered: Set[Tuple[int, int]] = set(
            (int(o), int(s)) for o, s in (resume_delivered or ())
        )
        self._close_origins: Set[int] = set(int(o) for o in (resume_close_origins or ()))
        self._emitted_round: int = self.round - 1
        self._mvba: Optional[ArrayAgreement] = None
        self.deliveries: List[Tuple[int, int, bytes]] = []  # (origin, seq, data)
        self.rounds_completed = 0
        #: count of slots delivered by *this instance* plus any resumed prefix
        self.slots_delivered = len(self._delivered)
        #: recovery hook: called at delivery of every slot (before the
        #: payload reaches the application) with
        #: (index, origin, seq, kind, data, round) — the write-ahead point
        #: for a durable delivery log.
        self.on_slot: Optional[Callable[[int, int, int, int, bytes, int], None]] = None
        #: recovery hook: called when a per-origin sequence number is
        #: allocated for an own send, with the *next* unused sequence number
        #: (persist it before the signed record can reach any peer).
        self.on_own_enqueue: Optional[Callable[[int], None]] = None

    # -- submitting payloads ---------------------------------------------------------

    def _pending_count(self) -> int:
        return len(self._own_queue)

    def _submit(self, data: bytes) -> None:
        self._enqueue_own(KIND_APP, data)

    def _submit_close(self) -> None:
        self._enqueue_own(KIND_CLOSE, b"")

    def _enqueue_own(self, kind: int, data: bytes) -> None:
        record: Record = (self.ctx.node_id, self._own_next_seq, kind, data)
        self._own_next_seq += 1
        if self.on_own_enqueue is not None:
            # Durability barrier: the allocated sequence number must hit the
            # log before the signed record can leave this process, or a
            # restarted replica could reuse it for a different payload.
            self.on_own_enqueue(self._own_next_seq)
        self._own_queue.append(record)
        self._try_emit()

    # -- per-round candidate emission ----------------------------------------------------

    def _try_emit(self) -> None:
        """Sign and circulate this party's round-``r`` candidate message."""
        if self._terminated or self._emitted_round >= self.round:
            return
        record = self._pick_candidate()
        if record is None:
            return
        self._emitted_round = self.round
        if self.obs.enabled:
            # Phase 1 of a round: collecting signed candidates from peers.
            self.obs.phase(self.obs_scope, "atomic.collect")
        sig = self.ctx.crypto.sign(SIGN_DOMAIN, sign_string(self.pid, self.round, record))
        self.send_all(MSG_QUEUE, (self.round, record, sig))

    def _pick_candidate(self) -> Optional[Record]:
        if self._own_queue:
            return self._own_queue[0]
        # Nothing of our own: adopt a message first signed by another party.
        for key, record in self._pending.items():
            if key not in self._delivered:
                return record
        return None

    # -- candidate handling ----------------------------------------------------------------

    def on_message(self, sender: int, mtype: str, payload: Any) -> None:
        if self.halted or mtype != MSG_QUEUE:
            return
        r, record, sig = payload
        if not isinstance(r, int) or r < self.round:
            return  # stale round
        record = self._check_record(record)
        if record is None:
            return
        if not isinstance(sig, int) or not self.ctx.crypto.verify_party(
            sender, SIGN_DOMAIN, sign_string(self.pid, r, record), sig
        ):
            return
        key = (record[0], record[1])
        if key in self._delivered:
            return
        round_candidates = self._candidates.setdefault(r, {})
        if sender in round_candidates:
            return  # one candidate per signer per round
        round_candidates[sender] = (record, sig)
        self._pending.setdefault(key, record)
        if r == self.round:
            self._try_emit()  # adopt if we had nothing to send
            self._maybe_propose()

    @staticmethod
    def _check_record(record: Any) -> Optional[Record]:
        if not (isinstance(record, tuple) and len(record) == 4):
            return None
        origin, seq, kind, data = record
        if not (isinstance(origin, int) and isinstance(seq, int) and seq >= 0):
            return None
        if kind not in (KIND_APP, KIND_CLOSE, KIND_CIPHER) or not isinstance(data, bytes):
            return None
        return (origin, seq, kind, data)

    # -- the round's multi-valued agreement -----------------------------------------------------

    def _maybe_propose(self) -> None:
        if self._mvba is not None or self._terminated:
            return
        round_candidates = self._candidates.get(self.round, {})
        if len(round_candidates) < self.batch_size:
            return
        # Assemble the batch from candidates in arrival order, preferring
        # distinct payloads: two signers may have signed the same adopted
        # message, and delivery deduplicates by (origin, seq), so distinct
        # entries maximize throughput per agreement round.
        batch: List[Tuple[int, Record, int]] = []
        seen_keys: Set[Tuple[int, int]] = set()
        for signer, (record, sig) in round_candidates.items():
            key = (record[0], record[1])
            if key in seen_keys:
                continue
            seen_keys.add(key)
            batch.append((signer, record, sig))
            if len(batch) == self.batch_size:
                break
        if len(batch) < self.batch_size:
            for signer, (record, sig) in round_candidates.items():
                if all(signer != s for s, _, _ in batch):
                    batch.append((signer, record, sig))
                    if len(batch) == self.batch_size:
                        break
        r = self.round
        self._mvba = ArrayAgreement(
            self.ctx,
            f"{self.pid}/r.{r}",
            validator=self._batch_validator(r),
            order=self.order,
        )
        self._mvba.on_decide = self._on_batch_decided
        if self.obs.enabled:
            # Phase 2: the batch is in multi-valued Byzantine agreement.
            self.obs.phase(self.obs_scope, "atomic.agree")
        self._mvba.propose(self._encode_batch(batch))

    def _encode_batch(self, batch: List[Tuple[int, Record, int]]) -> bytes:
        return encode([(signer, record, sig) for signer, record, sig in batch])

    def _batch_validator(self, r: int):
        def is_valid(value: bytes) -> bool:
            batch = self._decode_batch(r, value)
            return batch is not None

        return is_valid

    def _decode_batch(
        self, r: int, value: bytes
    ) -> Optional[List[Tuple[int, Record, int]]]:
        """Decode and fully validate a proposed batch for round ``r``.

        The external validity condition of the paper: exactly
        ``batch_size`` messages, properly signed for round ``r`` by
        distinct parties, none already delivered before round ``r``.
        """
        try:
            entries = decode(value)
        except EncodingError:
            return None
        if not isinstance(entries, list) or len(entries) != self.batch_size:
            return None
        signers: Set[int] = set()
        out: List[Tuple[int, Record, int]] = []
        for entry in entries:
            if not (isinstance(entry, tuple) and len(entry) == 3):
                return None
            signer, record, sig = entry
            if not isinstance(signer, int) or signer in signers:
                return None
            record = self._check_record(record)
            if record is None or (record[0], record[1]) in self._delivered:
                return None
            if not isinstance(sig, int) or not self.ctx.crypto.verify_party(
                signer, SIGN_DOMAIN, sign_string(self.pid, r, record), sig
            ):
                return None
            signers.add(signer)
            out.append((signer, record, sig))
        return out

    # -- delivery ------------------------------------------------------------------------------------

    def _on_batch_decided(
        self, mvba: ArrayAgreement, value: bytes, closing: Optional[bytes]
    ) -> None:
        if self._terminated:
            return
        r = self.round
        batch = self._decode_batch(r, value)
        if batch is None:  # cannot happen: the MVBA validated it
            raise ProtocolError("agreed batch failed validation")
        if self.obs.enabled:
            self.obs.phase_end(self.obs_scope)  # closes "atomic.agree"
            self.obs.count("atomic.rounds")
            self.obs.count("atomic.batch_entries", len(batch))
        # Fixed delivery order within the batch: by signer index.
        for signer, record, _ in sorted(batch, key=lambda e: e[0]):
            self._deliver_record(record)
        self.rounds_completed += 1
        self._mvba = None
        self._candidates.pop(r, None)
        if len(self._close_origins) >= self.ctx.t + 1:
            self._finish()
            return
        self.round = r + 1
        self._try_emit()
        self._maybe_propose()

    def _deliver_record(self, record: Record) -> None:
        origin, seq, kind, data = record
        key = (origin, seq)
        if key in self._delivered:
            return
        self._delivered.add(key)
        self._pending.pop(key, None)
        if self._own_queue and self._own_queue[0][:2] == key:
            self._own_queue.pop(0)
        index = self.slots_delivered
        self.slots_delivered = index + 1
        if self.on_slot is not None:
            self.on_slot(index, origin, seq, kind, data, self.round)
        if kind == KIND_CLOSE:
            self._close_origins.add(origin)
        else:
            self._handle_delivered_payload(origin, seq, kind, data)

    # -- recovery introspection ------------------------------------------------------

    def delivered_keys(self) -> List[Tuple[int, int]]:
        """Sorted (origin, seq) keys of every slot delivered so far."""
        return sorted(self._delivered)

    def close_origin_list(self) -> List[int]:
        """Sorted origins whose close requests have been delivered."""
        return sorted(self._close_origins)

    def _handle_delivered_payload(
        self, origin: int, seq: int, kind: int, data: bytes
    ) -> None:
        """Hook: the secure causal channel intercepts ciphertexts here."""
        self.deliveries.append((origin, seq, data))
        self._emit_output(data)

    def _finish(self) -> None:
        """Termination after the round in which t+1 close requests arrived."""
        self._terminate()
