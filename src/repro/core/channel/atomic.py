"""Atomic broadcast channel (paper Sec. 2.5) with batching and pipelining.

Guarantees that all honest parties deliver the same *sequence* of payload
messages (agreement + total order) and that a payload known to at least
``f`` parties is delivered after a bounded delay (fairness).  Built, like
the Chandra-Toueg protocol for the crash model, from rounds of multi-valued
Byzantine agreement on message batches:

* in every round each party digitally signs a *vector* of up to
  ``max_batch`` pending messages together with the round number and sends
  it to all; with nothing of its own to send, it adopts and signs messages
  first signed by another party.  ``max_batch = 1`` is the paper's
  configuration (one record per signer);
* each party proposes a batch of ``n - f + 1`` properly signed round-``r``
  vectors from distinct signers to multi-valued agreement (batch size is
  the configurable parameter; the paper's experiments use ``t + 1``, i.e.
  ``f = n - t``);
* all vectors of the agreed batch are delivered in a fixed order — by the
  index of the signing party, then by position inside the vector — which
  is what produces the two "bands" of Figures 4 and 5;
* payloads are identified by (origin, per-origin sequence number), the
  paper's deliberate relaxation of ideal integrity (Sec. 2.5): a bit
  string is delivered at most once per time an honest party sent it, and
  duplicate filtering beyond that is the application's business;
* a party closes the channel by sending a termination request as a regular
  payload; the channel terminates after the round in which ``t + 1``
  parties' requests have been delivered.

Two throughput extensions beyond the paper's strictly sequential rounds
(see ``docs/THROUGHPUT.md``):

**Pipelining** (``pipeline_depth``): candidates are emitted and agreement
instances run for every round in the window ``[r, r + depth)`` where ``r``
is the lowest undelivered round.  Decisions for later rounds are buffered
and *delivery stays strictly in round order*, so the total order is
unchanged — only the collect/propose phase of round ``r + 1`` overlaps the
agreement phase of round ``r``.  Because a round can be validated before
an earlier round has delivered locally, the batch validity predicate must
not depend on the local delivery frontier: instead of the paper's "none
already delivered before round r" clause, duplicates are filtered
deterministically at delivery time (every honest party delivers rounds in
the same order, so the filter is identical everywhere).  A Byzantine
signer can waste its own batch slot on stale records, but each batch
carries at least ``batch_size - t >= 1`` honest vectors, so liveness and
fairness are preserved.

**Payload offloading** (``offload=True``): agreement runs on 32-byte
vector digests instead of the vectors themselves, keeping MVBA proposals
small when ``max_batch`` is large.  Bodies are disseminated point-to-point
(``MSG_BATCH``) and each receiver returns a signature share on the
statement ``(channel, round, signer, digest)``; ``n - t`` shares combine
into an *availability certificate* proving that at least ``n - 2t >= t+1``
honest parties hold the body.  The certificate — a pure, globally
checkable predicate — is what the MVBA validator verifies, and a party
missing a decided body fetches it (``MSG_FETCH``/``MSG_BODY``) from the
certified holders, so delivery cannot stall on a withheld body.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.common.encoding import decode, encode
from repro.common.errors import EncodingError, ProtocolError
from repro.core.agreement.multivalued import ORDER_RANDOM, ArrayAgreement
from repro.core.channel.base import Channel
from repro.core.protocol import Context
from repro.crypto.threshold_sig import MultiSignatureScheme

MSG_QUEUE = "queue"   # candidate announcement: (r, vector, sig) / (r, digest, cert)
MSG_BATCH = "body"    # offload: body dissemination (r, vector)
MSG_ACK = "avail"     # offload: availability share (r, digest, share), unicast
MSG_FETCH = "fetch"   # offload: request a missing decided body (r, signer, digest)
MSG_BODY = "bodyr"    # offload: fetched-body reply (r, signer, vector), unicast

KIND_APP = 0
KIND_CLOSE = 1
KIND_CIPHER = 2  # used by the secure causal channel subclass

SIGN_DOMAIN = "sintra.atomic"
AVAIL_DOMAIN = "sintra.atomic.avail"

#: hard upper bound on records per candidate vector — a protocol constant
#: (not the local ``max_batch`` knob) so the batch validity predicate stays
#: a pure function every party evaluates identically
VECTOR_LIMIT = 1024
#: delivered rounds whose offloaded bodies stay cached to serve fetches
#: from lagging parties
BODY_KEEP_ROUNDS = 32

#: a candidate record: (origin, seq, kind, data)
Record = Tuple[int, int, int, bytes]


def vector_digest(vector: List[Record]) -> bytes:
    """Collision-resistant digest of a candidate vector."""
    return hashlib.sha256(encode(list(vector))).digest()


def sign_string(pid: str, r: int, digest: bytes) -> bytes:
    """The string a party signs to put a vector forward in round ``r``."""
    return encode(("atomic-batch", pid, r, digest))


def avail_string(pid: str, r: int, signer: int, digest: bytes) -> bytes:
    """The availability statement receivers of a body sign a share on."""
    return encode(("atomic-avail", pid, r, signer, digest))


class AtomicChannel(Channel):
    """One party's endpoint of the atomic broadcast channel."""

    kind = "atomic"

    def __init__(
        self,
        ctx: Context,
        pid: str,
        fairness_f: Optional[int] = None,
        order: str = ORDER_RANDOM,
        max_pending: Optional[int] = None,
        max_batch: int = 1,
        pipeline_depth: int = 1,
        offload: bool = False,
        resume_round: Optional[int] = None,
        resume_delivered: Optional[Iterable[Tuple[int, int]]] = None,
        resume_close_origins: Optional[Iterable[int]] = None,
        resume_next_seq: int = 0,
        resume_own_records: Optional[Iterable[Record]] = None,
        resume_pending: Optional[Iterable[Record]] = None,
    ):
        super().__init__(ctx, pid, max_pending=max_pending)
        n, t = ctx.n, ctx.t
        f = fairness_f if fairness_f is not None else n - t
        if not t + 1 <= f <= n - t:
            raise ProtocolError(f"fairness parameter must be in [t+1, n-t], got {f}")
        self.fairness_f = f
        self.batch_size = n - f + 1
        if not 1 <= max_batch <= VECTOR_LIMIT:
            raise ProtocolError(
                f"max_batch must be in [1, {VECTOR_LIMIT}], got {max_batch}"
            )
        self.max_batch = max_batch
        if pipeline_depth < 1:
            raise ProtocolError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
        self.pipeline_depth = pipeline_depth
        self.offload = bool(offload)
        self.order = order
        if resume_round is not None and resume_round < 1:
            raise ProtocolError(f"resume round must be >= 1, got {resume_round}")
        self.round = 1 if resume_round is None else resume_round
        #: messages this party has sent but that are not yet delivered
        self._own_queue: List[Record] = []
        self._own_next_seq = resume_next_seq
        #: round -> {signer: (vector-or-digest, proof)} in arrival order
        self._candidates: Dict[int, Dict[int, Tuple[Any, Any]]] = {}
        #: adoption pool: (origin, seq) -> record, in arrival order
        self._pending: Dict[Tuple[int, int], Record] = {}
        self._delivered: Set[Tuple[int, int]] = set(
            (int(o), int(s)) for o, s in (resume_delivered or ())
        )
        self._close_origins: Set[int] = set(int(o) for o in (resume_close_origins or ()))
        # Epoch handover: records harvested from a frozen predecessor
        # channel re-enter here — own sends re-emit from the own queue,
        # foreign records rejoin the adoption pool (fairness carries over).
        for raw in resume_own_records or ():
            record = self._check_record(tuple(raw))
            if record is not None and (record[0], record[1]) not in self._delivered:
                self._own_queue.append(record)
        for raw in resume_pending or ():
            record = self._check_record(tuple(raw))
            if record is not None and (record[0], record[1]) not in self._delivered:
                self._pending.setdefault((record[0], record[1]), record)
        if self._own_queue or self._pending:
            # Carried-over records must re-enter agreement without waiting
            # for a fresh send; pump once construction has finished.
            ctx.defer(self._pump)
        #: rounds for which this party's signed candidate is already out
        self._emitted: Set[int] = set()
        #: round -> keys inside this party's emitted candidate (in-flight)
        self._emitted_keys: Dict[int, Set[Tuple[int, int]]] = {}
        #: keys inside decided-but-undelivered batches (will deliver soon)
        self._reserved: Set[Tuple[int, int]] = set()
        #: in-flight agreement instances, one per pipelined round
        self._mvbas: Dict[int, ArrayAgreement] = {}
        #: decided rounds awaiting strictly in-order delivery
        self._decided: Dict[int, List[Tuple[int, Any, Any]]] = {}
        self._closing = False
        self.deliveries: List[Tuple[int, int, bytes]] = []  # (origin, seq, data)
        self.rounds_completed = 0
        #: count of slots delivered by *this instance* plus any resumed prefix
        self.slots_delivered = len(self._delivered)
        #: recovery hook: called at delivery of every slot (before the
        #: payload reaches the application) with
        #: (index, origin, seq, kind, data, round) — the write-ahead point
        #: for a durable delivery log.  Batched slots of one round share the
        #: round number; ``index`` is the stable per-payload sub-sequence.
        self.on_slot: Optional[Callable[[int, int, int, int, bytes, int], None]] = None
        #: recovery hook: called when a per-origin sequence number is
        #: allocated for an own send, with the *next* unused sequence number
        #: (persist it before the signed record can reach any peer).
        self.on_own_enqueue: Optional[Callable[[int], None]] = None
        #: membership hook: a *pure* predicate on delivered application
        #: payloads (every honest party evaluates it identically at the
        #: same slot).  When it fires, the record just delivered is the
        #: final slot of this channel's epoch: delivery stops mid-batch,
        #: in-flight agreements abort, the channel freezes, and
        #: ``on_barrier(round)`` is invoked.  Undelivered records are
        #: harvested with :meth:`harvest_resume` and carried into the
        #: successor channel.
        self.barrier_predicate: Optional[Callable[[bytes], bool]] = None
        #: membership hook: called once, synchronously, when the barrier
        #: freezes the channel, with the barrier round number.
        self.on_barrier: Optional[Callable[[int], None]] = None
        #: set at epoch cutover: a frozen channel forwards late own
        #: submissions here (``send()`` defers ``_submit`` through the
        #: scheduler, so one may land after the harvest — without the
        #: forward it would be silently lost).
        self.successor: Optional["AtomicChannel"] = None
        self._barrier_hit = False
        self._frozen = False
        # -- offload state -----------------------------------------------------
        if self.offload:
            crypto = ctx.crypto
            self._avail_scheme = MultiSignatureScheme(
                crypto.n, crypto.n - crypto.t, crypto.t,
                crypto.party_public_keys, AVAIL_DOMAIN,
            )
            self._avail_signer = self._avail_scheme.signer(
                crypto.index0 + 1, crypto.rsa
            )
        else:
            self._avail_scheme = None
            self._avail_signer = None
        #: (round, signer, digest) -> body vector
        self._bodies: Dict[Tuple[int, int, bytes], List[Record]] = {}
        self._body_count: Dict[Tuple[int, int], int] = {}
        self._acked: Set[Tuple[int, int]] = set()
        #: round -> digest of this party's own disseminated body
        self._own_digest: Dict[int, bytes] = {}
        #: round -> {1-based signer index: availability share}
        self._ack_shares: Dict[int, Dict[int, bytes]] = {}
        self._cert_done: Set[int] = set()
        self._fetched: Set[Tuple[int, int, bytes]] = set()
        self._served: Set[Tuple[int, int, int, bytes]] = set()

    # -- submitting payloads ---------------------------------------------------------

    def _pending_count(self) -> int:
        return len(self._own_queue)

    def _submit(self, data: bytes) -> None:
        self._enqueue_own(KIND_APP, data)

    def _submit_close(self) -> None:
        self._enqueue_own(KIND_CLOSE, b"")

    def _enqueue_own(self, kind: int, data: bytes) -> None:
        if self._frozen and self.successor is not None:
            self.successor._enqueue_own(kind, data)
            return
        record: Record = (self.ctx.node_id, self._own_next_seq, kind, data)
        self._own_next_seq += 1
        if self.on_own_enqueue is not None:
            # Durability barrier: the allocated sequence number must hit the
            # log before the signed record can leave this process, or a
            # restarted replica could reuse it for a different payload.
            self.on_own_enqueue(self._own_next_seq)
        self._own_queue.append(record)
        self._pump()

    # -- the pipeline window ----------------------------------------------------------

    def _pump(self) -> None:
        """Emit candidates and start agreements across the pipeline window."""
        if self._terminated or self._closing or self._frozen:
            return
        for r in range(self.round, self.round + self.pipeline_depth):
            if r in self._decided:
                continue
            self._try_emit(r)
            self._maybe_propose(r)
        if self.obs.enabled:
            self.obs.set_gauge("atomic.pipeline.inflight", float(len(self._mvbas)))

    # -- per-round candidate emission ----------------------------------------------------

    def _try_emit(self, r: int) -> None:
        """Sign and circulate this party's round-``r`` candidate vector."""
        if r in self._emitted:
            return
        vector = self._pick_vector()
        if vector is None:
            return
        self._emitted.add(r)
        self._emitted_keys[r] = {(rec[0], rec[1]) for rec in vector}
        if self.obs.enabled:
            # Phase 1 of a round: collecting signed candidates from peers.
            self.obs.phase((self.obs_scope, r), "atomic.collect")
        digest = vector_digest(vector)
        if self.offload:
            # Disseminate the body; the candidate announcement follows once
            # the availability certificate assembles (see _on_ack).
            self._own_digest[r] = digest
            self.send_all(MSG_BATCH, (r, vector))
        else:
            sig = self.ctx.crypto.sign(SIGN_DOMAIN, sign_string(self.pid, r, digest))
            self.send_all(MSG_QUEUE, (r, vector, sig))

    def _pick_vector(self) -> Optional[List[Record]]:
        """Up to ``max_batch`` undelivered records: own queue first, then
        adoption of records first signed by other parties (fairness)."""
        out: List[Record] = []
        taken: Set[Tuple[int, int]] = set()

        def eligible(key: Tuple[int, int]) -> bool:
            if key in self._delivered or key in self._reserved or key in taken:
                return False
            # skip keys already riding one of our in-flight candidates
            return not any(key in keys for keys in self._emitted_keys.values())

        for record in self._own_queue:
            key = (record[0], record[1])
            if eligible(key):
                taken.add(key)
                out.append(record)
                if len(out) == self.max_batch:
                    return out
        for key, record in self._pending.items():
            if eligible(key):
                taken.add(key)
                out.append(record)
                if len(out) == self.max_batch:
                    return out
        return out or None

    # -- candidate and body handling --------------------------------------------------------

    def on_message(self, sender: int, mtype: str, payload: Any) -> None:
        if self.halted or self._frozen:
            return
        if mtype == MSG_QUEUE:
            self._on_candidate(sender, payload)
        elif self.offload:
            if mtype == MSG_BATCH:
                self._on_body(sender, payload)
            elif mtype == MSG_ACK:
                self._on_ack(sender, payload)
            elif mtype == MSG_FETCH:
                self._on_fetch(sender, payload)
            elif mtype == MSG_BODY:
                self._on_fetched_body(sender, payload)

    def _on_candidate(self, sender: int, payload: Any) -> None:
        if not (isinstance(payload, tuple) and len(payload) == 3):
            return
        r, body, proof = payload
        if not isinstance(r, int) or r < self.round or r in self._decided:
            return  # stale or already agreed
        round_candidates = self._candidates.setdefault(r, {})
        if sender in round_candidates:
            return  # one candidate per signer per round
        if self.offload:
            if not (isinstance(body, bytes) and isinstance(proof, bytes)):
                return
            if not self.ctx.crypto.accel.sig_ok(
                self._avail_scheme, avail_string(self.pid, r, sender, body), proof
            ):
                return
            round_candidates[sender] = (body, proof)
        else:
            vector = self._check_vector(body)
            if vector is None or not isinstance(proof, int):
                return
            digest = vector_digest(vector)
            if not self.ctx.crypto.verify_party(
                sender, SIGN_DOMAIN, sign_string(self.pid, r, digest), proof
            ):
                return
            round_candidates[sender] = (vector, proof)
            self._absorb(vector)
        self._pump()

    def _absorb(self, vector: List[Record]) -> None:
        """Merge a seen vector into the adoption pool (fairness)."""
        for record in vector:
            key = (record[0], record[1])
            if key not in self._delivered:
                self._pending.setdefault(key, record)

    @staticmethod
    def _check_record(record: Any) -> Optional[Record]:
        if not (isinstance(record, tuple) and len(record) == 4):
            return None
        origin, seq, kind, data = record
        if not (isinstance(origin, int) and isinstance(seq, int) and seq >= 0):
            return None
        if kind not in (KIND_APP, KIND_CLOSE, KIND_CIPHER) or not isinstance(data, bytes):
            return None
        return (origin, seq, kind, data)

    @classmethod
    def _check_vector(cls, vector: Any) -> Optional[List[Record]]:
        """Shape-check a candidate vector: 1..VECTOR_LIMIT well-formed
        records with distinct (origin, seq) keys."""
        if not isinstance(vector, (list, tuple)) or not 1 <= len(vector) <= VECTOR_LIMIT:
            return None
        out: List[Record] = []
        keys: Set[Tuple[int, int]] = set()
        for record in vector:
            record = cls._check_record(record)
            if record is None or (record[0], record[1]) in keys:
                return None
            keys.add((record[0], record[1]))
            out.append(record)
        return out

    # -- the round's multi-valued agreement -----------------------------------------------------

    def _maybe_propose(self, r: int) -> None:
        if (
            r in self._mvbas
            or r in self._decided
            or self._terminated
            or self._closing
            or self._frozen
        ):
            return
        round_candidates = self._candidates.get(r, {})
        if len(round_candidates) < self.batch_size:
            return
        batch = self._assemble(round_candidates)
        mvba = ArrayAgreement(
            self.ctx,
            f"{self.pid}/r.{r}",
            validator=self._batch_validator(r),
            order=self.order,
        )
        mvba.on_decide = (
            lambda _mvba, value, closing, r=r: self._on_round_decided(r, value)
        )
        self._mvbas[r] = mvba
        if self.obs.enabled:
            # Phase 2: the batch is in multi-valued Byzantine agreement.
            self.obs.phase((self.obs_scope, r), "atomic.agree")
            self.obs.set_gauge("atomic.pipeline.inflight", float(len(self._mvbas)))
        mvba.propose(self._encode_batch(batch))

    def _assemble(
        self, round_candidates: Dict[int, Tuple[Any, Any]]
    ) -> List[Tuple[int, Any, Any]]:
        """Pick ``batch_size`` candidate entries from distinct signers.

        Inline vectors are chosen preferring entries that contribute at
        least one new undelivered key — two signers may have adopted the
        same records, and delivery deduplicates by (origin, seq), so
        distinct entries maximize throughput per agreement round.
        Offloaded candidates are opaque digests; arrival order is used.
        """
        chosen: List[Tuple[int, Any, Any]] = []
        if not self.offload:
            covered: Set[Tuple[int, int]] = set()
            for signer, (vector, proof) in round_candidates.items():
                keys = {(rec[0], rec[1]) for rec in vector}
                keys -= self._delivered | covered
                if not keys:
                    continue
                covered.update(keys)
                chosen.append((signer, vector, proof))
                if len(chosen) == self.batch_size:
                    return chosen
        picked = {signer for signer, _, _ in chosen}
        for signer, (body, proof) in round_candidates.items():
            if signer in picked:
                continue
            chosen.append((signer, body, proof))
            picked.add(signer)
            if len(chosen) == self.batch_size:
                break
        return chosen

    def _encode_batch(self, batch: List[Tuple[int, Any, Any]]) -> bytes:
        return encode([(signer, body, proof) for signer, body, proof in batch])

    def _batch_validator(self, r: int):
        def is_valid(value: bytes) -> bool:
            return self._decode_batch(r, value) is not None

        return is_valid

    def _decode_batch(
        self, r: int, value: bytes
    ) -> Optional[List[Tuple[int, Any, Any]]]:
        """Decode and fully validate a proposed batch for round ``r``.

        The external validity condition: exactly ``batch_size`` entries
        from distinct signers, each either a well-formed vector properly
        signed for round ``r`` (inline) or a digest under a valid
        availability certificate for round ``r`` (offload).  Unlike the
        paper's strictly sequential protocol, the predicate does *not*
        consult the local delivery frontier — under pipelining that
        frontier differs between parties while a later round validates, so
        duplicate records are instead filtered deterministically at
        delivery time.
        """
        try:
            entries = decode(value)
        except EncodingError:
            return None
        if not isinstance(entries, list) or len(entries) != self.batch_size:
            return None
        signers: Set[int] = set()
        out: List[Tuple[int, Any, Any]] = []
        for entry in entries:
            if not (isinstance(entry, tuple) and len(entry) == 3):
                return None
            signer, body, proof = entry
            if (
                not isinstance(signer, int)
                or signer in signers
                or not 0 <= signer < self.ctx.n
            ):
                return None
            if self.offload:
                if not (isinstance(body, bytes) and isinstance(proof, bytes)):
                    return None
                if not self.ctx.crypto.accel.sig_ok(
                    self._avail_scheme, avail_string(self.pid, r, signer, body), proof
                ):
                    return None
                out.append((signer, body, proof))
            else:
                vector = self._check_vector(body)
                if vector is None:
                    return None
                if not isinstance(proof, int) or not self.ctx.crypto.verify_party(
                    signer, SIGN_DOMAIN,
                    sign_string(self.pid, r, vector_digest(vector)), proof,
                ):
                    return None
                out.append((signer, vector, proof))
            signers.add(signer)
        return out

    # -- delivery ------------------------------------------------------------------------------------

    def _on_round_decided(self, r: int, value: bytes) -> None:
        if self._terminated or self._closing or self._frozen:
            return
        self._mvbas.pop(r, None)
        if r < self.round or r in self._decided:
            return  # stale decision (cannot happen without an abort race)
        batch = self._decode_batch(r, value)
        if batch is None:  # cannot happen: the MVBA validated it
            raise ProtocolError("agreed batch failed validation")
        self._decided[r] = batch
        for signer, body, _ in batch:
            vector = body if not self.offload else self._bodies.get((r, signer, body))
            if vector is not None:
                for record in vector:
                    self._reserved.add((record[0], record[1]))
        if self.obs.enabled:
            self.obs.phase_end((self.obs_scope, r))  # closes "atomic.agree"
            self.obs.count("atomic.rounds")
            self.obs.set_gauge("atomic.pipeline.inflight", float(len(self._mvbas)))
        self._advance()

    def _advance(self) -> None:
        """Deliver decided rounds strictly in round order."""
        while (
            not self._terminated
            and not self._closing
            and not self._frozen
            and self.round in self._decided
        ):
            r = self.round
            batch = self._decided[r]
            resolved = self._resolve_bodies(r, batch)
            if resolved is None:
                return  # waiting on offloaded bodies; resumed on arrival
            del self._decided[r]
            self._deliver_round(r, batch, resolved)
        self._pump()

    def _resolve_bodies(
        self, r: int, batch: List[Tuple[int, Any, Any]]
    ) -> Optional[List[Tuple[int, List[Record]]]]:
        if not self.offload:
            return [(signer, vector) for signer, vector, _ in batch]
        resolved: List[Tuple[int, List[Record]]] = []
        missing: List[Tuple[int, bytes]] = []
        for signer, digest, _ in batch:
            vector = self._bodies.get((r, signer, digest))
            if vector is None:
                missing.append((signer, digest))
            else:
                resolved.append((signer, vector))
        if missing:
            # The certificate guarantees >= t+1 live honest holders.
            for signer, digest in missing:
                fetch_key = (r, signer, digest)
                if fetch_key not in self._fetched:
                    self._fetched.add(fetch_key)
                    if self.obs.enabled:
                        self.obs.count("atomic.offload.fetches")
                    self.send_all(MSG_FETCH, (r, signer, digest))
            return None
        return resolved

    def _deliver_round(
        self,
        r: int,
        batch: List[Tuple[int, Any, Any]],
        resolved: List[Tuple[int, List[Record]]],
    ) -> None:
        delivered_now = 0
        # Fixed delivery order within the batch: by signer index, then by
        # position inside the signer's vector.
        for signer, vector in sorted(resolved, key=lambda e: e[0]):
            for record in vector:
                delivered_now += self._deliver_record(record, r)
                if self._barrier_hit:
                    break
            if self._barrier_hit:
                break
        self.rounds_completed += 1
        self._candidates.pop(r, None)
        self._emitted.discard(r)
        self._emitted_keys.pop(r, None)
        if self.offload:
            self._gc_offload(r)
        if self.obs.enabled:
            self.obs.count("atomic.batch_entries", len(batch))
            self.obs.count("atomic.batch.payloads", delivered_now)
            self.obs.observe("atomic.batch.size", float(delivered_now))
        if len(self._close_origins) >= self.ctx.t + 1:
            # Closing always wins over a barrier: a channel that has
            # collected t+1 close requests terminates for good.
            self._closing = True
            self._abort_inflight()
            self._finish()
            return
        if self._barrier_hit:
            # The barrier record is the last slot of its epoch.  Records
            # of this batch sequenced after it are NOT delivered here —
            # they rejoin the adoption pool and carry over to the epoch
            # e+1 channel, which delivers them under its own (fresh)
            # round numbering.  The round is deliberately not advanced:
            # this channel is done.
            for _signer, vector in resolved:
                self._absorb(vector)
            self._frozen = True
            self._abort_inflight()
            if self.obs.enabled:
                self.obs.count("atomic.barrier")
            if self.on_barrier is not None:
                self.on_barrier(r)
            return
        self.round = r + 1

    def _deliver_record(self, record: Record, r: int) -> int:
        origin, seq, kind, data = record
        key = (origin, seq)
        if key in self._delivered:
            return 0
        self._delivered.add(key)
        self._pending.pop(key, None)
        self._reserved.discard(key)
        # Drain every delivered prefix of the own queue: with batching, an
        # own record adopted by a peer can deliver before an earlier one.
        while (
            self._own_queue
            and (self._own_queue[0][0], self._own_queue[0][1]) in self._delivered
        ):
            self._own_queue.pop(0)
        index = self.slots_delivered
        self.slots_delivered = index + 1
        if self.on_slot is not None:
            self.on_slot(index, origin, seq, kind, data, r)
        if kind == KIND_CLOSE:
            self._close_origins.add(origin)
        else:
            if (
                kind == KIND_APP
                and self.barrier_predicate is not None
                and self.barrier_predicate(data)
            ):
                self._barrier_hit = True
            self._handle_delivered_payload(origin, seq, kind, data)
        return 1

    def _abort_inflight(self) -> None:
        """Tear down agreements for rounds after the closing round."""
        for mvba in self._mvbas.values():
            mvba.abort()
        self._mvbas.clear()
        self._decided.clear()
        if self.obs.enabled:
            self.obs.set_gauge("atomic.pipeline.inflight", 0.0)

    # -- offloaded bodies --------------------------------------------------------------

    def _on_body(self, sender: int, payload: Any) -> None:
        if not (isinstance(payload, tuple) and len(payload) == 2):
            return
        r, body = payload
        if not isinstance(r, int) or r < self.round:
            return  # rounds below the frontier have fully delivered
        vector = self._check_vector(body)
        if vector is None:
            return
        digest = vector_digest(vector)
        if not self._store_body(r, sender, digest, vector):
            return
        if (r, sender) not in self._acked:
            # Ack only the first valid body per (round, signer): an
            # equivocating signer cannot farm certificates, and every
            # certificate still proves >= n - 2t honest holders.
            self._acked.add((r, sender))
            share = self._avail_signer.sign_share(
                avail_string(self.pid, r, sender, digest)
            )
            self.unicast(sender, MSG_ACK, (r, digest, share))
            if self.obs.enabled:
                self.obs.count("atomic.offload.acks")
        self._advance()

    def _store_body(
        self, r: int, signer: int, digest: bytes, vector: List[Record]
    ) -> bool:
        bkey = (r, signer, digest)
        if bkey in self._bodies:
            return False
        count = self._body_count.get((r, signer), 0)
        if count >= 2:
            return False  # bound what an equivocating signer can store here
        self._body_count[(r, signer)] = count + 1
        self._bodies[bkey] = vector
        self._absorb(vector)
        return True

    def _on_ack(self, sender: int, payload: Any) -> None:
        if not (isinstance(payload, tuple) and len(payload) == 3):
            return
        r, digest, share = payload
        if not (
            isinstance(r, int)
            and isinstance(digest, bytes)
            and isinstance(share, bytes)
        ):
            return
        if r < self.round or r in self._cert_done:
            return
        if self._own_digest.get(r) != digest:
            return
        statement = avail_string(self.pid, r, self.ctx.node_id, digest)
        if not self.ctx.crypto.accel.sig_share_ok(self._avail_scheme, statement, share):
            return
        shares = self._ack_shares.setdefault(r, {})
        if sender + 1 in shares:
            return
        shares[sender + 1] = share
        if len(shares) >= self._avail_scheme.k:
            cert = self._avail_scheme.combine(statement, shares)
            self._cert_done.add(r)
            if self.obs.enabled:
                self.obs.count("atomic.offload.certs")
            self.send_all(MSG_QUEUE, (r, digest, cert))

    def _on_fetch(self, sender: int, payload: Any) -> None:
        if not (isinstance(payload, tuple) and len(payload) == 3):
            return
        r, signer, digest = payload
        if not (
            isinstance(r, int)
            and isinstance(signer, int)
            and isinstance(digest, bytes)
        ):
            return
        vector = self._bodies.get((r, signer, digest))
        if vector is None:
            return
        serve_key = (sender, r, signer, digest)
        if serve_key in self._served:
            return  # at most one reply per requester per body
        self._served.add(serve_key)
        if self.obs.enabled:
            self.obs.count("atomic.offload.served")
        self.unicast(sender, MSG_BODY, (r, signer, vector))

    def _on_fetched_body(self, sender: int, payload: Any) -> None:
        if not (isinstance(payload, tuple) and len(payload) == 3):
            return
        r, signer, body = payload
        if not (isinstance(r, int) and isinstance(signer, int)) or r < self.round:
            return
        vector = self._check_vector(body)
        if vector is None:
            return
        # The digest authenticates the body regardless of who served it.
        self._store_body(r, signer, vector_digest(vector), vector)
        self._advance()

    def _gc_offload(self, r: int) -> None:
        """Drop offload state for rounds far behind the frontier.

        Bodies of recently delivered rounds are kept for
        ``BODY_KEEP_ROUNDS`` so lagging parties' fetches can be served.
        """
        horizon = r - BODY_KEEP_ROUNDS
        if horizon < 1:
            return
        self._bodies = {k: v for k, v in self._bodies.items() if k[0] > horizon}
        self._body_count = {
            k: v for k, v in self._body_count.items() if k[0] > horizon
        }
        self._acked = {k for k in self._acked if k[0] > horizon}
        self._own_digest = {
            k: v for k, v in self._own_digest.items() if k > horizon
        }
        self._ack_shares = {
            k: v for k, v in self._ack_shares.items() if k > horizon
        }
        self._cert_done = {k for k in self._cert_done if k > horizon}
        self._fetched = {k for k in self._fetched if k[0] > horizon}
        self._served = {k for k in self._served if k[1] > horizon}

    # -- recovery introspection ------------------------------------------------------

    def delivered_keys(self) -> List[Tuple[int, int]]:
        """Sorted (origin, seq) keys of every slot delivered so far."""
        return sorted(self._delivered)

    def close_origin_list(self) -> List[int]:
        """Sorted origins whose close requests have been delivered."""
        return sorted(self._close_origins)

    @property
    def frozen(self) -> bool:
        """True once the epoch barrier has frozen this channel."""
        return self._frozen

    def harvest_resume(self) -> Dict[str, Any]:
        """Everything a successor channel needs to continue this one.

        Returned as keyword arguments for the constructor's ``resume_*``
        parameters: the delivered-key set (cross-epoch duplicate
        suppression — per-origin sequence numbers continue across
        epochs), surviving close origins, the next own sequence number,
        and the undelivered records (own queue and adoption pool) that
        must re-enter agreement in the next epoch."""
        return dict(
            resume_delivered=self.delivered_keys(),
            resume_close_origins=self.close_origin_list(),
            resume_next_seq=self._own_next_seq,
            resume_own_records=[
                rec for rec in self._own_queue
                if (rec[0], rec[1]) not in self._delivered
            ],
            resume_pending=[
                rec for key, rec in self._pending.items()
                if key not in self._delivered
            ],
        )

    def abort(self) -> None:
        """Tear the channel down without delivering anything further.

        Used at the epoch cutover after :meth:`harvest_resume`: in-flight
        agreements abort, the protocol unregisters (its pid is
        tombstoned, so straggling old-epoch frames are dropped at the
        router), and the ``closed`` future is left unresolved — the
        channel did not close, it was superseded."""
        self._frozen = True
        self._abort_inflight()
        super().abort()

    def _handle_delivered_payload(
        self, origin: int, seq: int, kind: int, data: bytes
    ) -> None:
        """Hook: the secure causal channel intercepts ciphertexts here."""
        self.deliveries.append((origin, seq, data))
        self._emit_output(data)

    def _finish(self) -> None:
        """Termination after the round in which t+1 close requests arrived."""
        self._terminate()
