"""Broadcast channels (paper Secs. 2.5-2.7 and 3.4)."""

from repro.core.channel.base import Channel
from repro.core.channel.atomic import AtomicChannel
from repro.core.channel.secure import SecureAtomicChannel
from repro.core.channel.reliable_channel import ReliableChannel
from repro.core.channel.consistent_channel import ConsistentChannel
from repro.core.channel.optimistic import OptimisticAtomicChannel
from repro.core.channel.stability import StabilizedConsistentChannel

__all__ = [
    "Channel",
    "AtomicChannel",
    "SecureAtomicChannel",
    "ReliableChannel",
    "ConsistentChannel",
    "OptimisticAtomicChannel",
    "StabilizedConsistentChannel",
]
