"""Broadcast channels (paper Secs. 2.5-2.7 and 3.4).

:class:`~repro.common.errors.ChannelCongested` is re-exported here: it is
the public backpressure signal of every bounded channel (``send`` on a
full ``max_pending`` buffer), and callers should be able to import it
from the channel package they are sending on.
"""

from repro.common.errors import ChannelCongested
from repro.core.channel.base import Channel
from repro.core.channel.atomic import AtomicChannel
from repro.core.channel.secure import SecureAtomicChannel
from repro.core.channel.reliable_channel import ReliableChannel
from repro.core.channel.consistent_channel import ConsistentChannel
from repro.core.channel.optimistic import OptimisticAtomicChannel
from repro.core.channel.stability import StabilizedConsistentChannel

__all__ = [
    "Channel",
    "ChannelCongested",
    "AtomicChannel",
    "SecureAtomicChannel",
    "ReliableChannel",
    "ConsistentChannel",
    "OptimisticAtomicChannel",
    "StabilizedConsistentChannel",
]
