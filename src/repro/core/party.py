"""A SINTRA server: protocol factory bound to one party's context.

``Party`` is the convenience entry point mirroring the paper's class
hierarchy (Fig. 2): it creates correctly-wired instances of every protocol
for this party.  All parties of a group must create matching instances
(same constructor, same ``pid``) for a protocol to run — protocol
identifiers are the rendezvous mechanism, exactly as in the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.core.agreement import ArrayAgreement, BinaryAgreement, ValidatedAgreement
from repro.core.agreement.binary import BinaryValidator
from repro.core.agreement.multivalued import ORDER_RANDOM, ArrayValidator
from repro.core.broadcast import (
    ConsistentBroadcast,
    ReliableBroadcast,
    VerifiableConsistentBroadcast,
)
from repro.core.channel import (
    AtomicChannel,
    ConsistentChannel,
    OptimisticAtomicChannel,
    ReliableChannel,
    SecureAtomicChannel,
    StabilizedConsistentChannel,
)
from repro.core.protocol import Context


class Party:
    """Factory for protocol instances on one server."""

    def __init__(self, ctx: Context):
        self.ctx = ctx

    @property
    def id(self) -> int:
        return self.ctx.node_id

    @property
    def n(self) -> int:
        return self.ctx.n

    @property
    def t(self) -> int:
        return self.ctx.t

    @property
    def obs(self):
        """The runtime's observability recorder (no-op unless enabled).

        Every protocol this party creates records into it; applications
        can add their own counters/spans under an ``app.*`` prefix.
        """
        return self.ctx.obs

    # -- broadcast primitives ---------------------------------------------------

    def reliable_broadcast(self, basepid: str, sender: int) -> ReliableBroadcast:
        return ReliableBroadcast(self.ctx, basepid, sender)

    def consistent_broadcast(self, basepid: str, sender: int) -> ConsistentBroadcast:
        return ConsistentBroadcast(self.ctx, basepid, sender)

    def verifiable_consistent_broadcast(
        self, basepid: str, sender: int
    ) -> VerifiableConsistentBroadcast:
        return VerifiableConsistentBroadcast(self.ctx, basepid, sender)

    # -- agreement ------------------------------------------------------------------

    def binary_agreement(self, pid: str) -> BinaryAgreement:
        return BinaryAgreement(self.ctx, pid)

    def validated_agreement(
        self,
        pid: str,
        validator: BinaryValidator,
        bias: Optional[int] = None,
    ) -> ValidatedAgreement:
        return ValidatedAgreement(self.ctx, pid, validator, bias=bias)

    def array_agreement(
        self,
        pid: str,
        validator: Optional[ArrayValidator] = None,
        order: str = ORDER_RANDOM,
    ) -> ArrayAgreement:
        return ArrayAgreement(self.ctx, pid, validator=validator, order=order)

    # -- channels -----------------------------------------------------------------------

    def atomic_channel(self, pid: str, **kwargs) -> AtomicChannel:
        return AtomicChannel(self.ctx, pid, **kwargs)

    def secure_atomic_channel(self, pid: str, **kwargs) -> SecureAtomicChannel:
        return SecureAtomicChannel(self.ctx, pid, **kwargs)

    def optimistic_atomic_channel(self, pid: str, **kwargs) -> OptimisticAtomicChannel:
        """Atomic broadcast with the sequencer-based fast path (Sec. 6)."""
        return OptimisticAtomicChannel(self.ctx, pid, **kwargs)

    def reliable_channel(self, pid: str) -> ReliableChannel:
        return ReliableChannel(self.ctx, pid)

    def consistent_channel(self, pid: str) -> ConsistentChannel:
        return ConsistentChannel(self.ctx, pid)

    def stabilized_consistent_channel(self, pid: str) -> StabilizedConsistentChannel:
        """Consistent channel + the Sec. 2.7 external stability mechanism."""
        return StabilizedConsistentChannel(self.ctx, pid)


def make_parties(runtime) -> "list[Party]":
    """One :class:`Party` per context of a runtime."""
    return [Party(ctx) for ctx in runtime.contexts]
