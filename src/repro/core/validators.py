"""Validator interfaces for validated agreement (paper Sec. 3.3).

In the Java prototype these are the abstract classes ``BinaryValidator``
(``isValid(boolean value, byte[] proof)``) and ``ArrayValidator``
(``isValid(byte[] value)``).  In Python a validator is simply a callable;
these aliases and adapters document the expected signatures and allow
class-style validators for API parity with the paper.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

#: ``(value, proof) -> bool``
BinaryValidator = Callable[[int, Optional[bytes]], bool]

#: ``(value) -> bool``
ArrayValidator = Callable[[bytes], bool]


class BinaryValidatorBase(abc.ABC):
    """Class-style binary validator (the paper's ``BinaryValidator``)."""

    @abc.abstractmethod
    def is_valid(self, value: int, proof: Optional[bytes]) -> bool:
        """Return whether ``proof`` establishes the validity of ``value``."""

    def __call__(self, value: int, proof: Optional[bytes]) -> bool:
        return self.is_valid(value, proof)


class ArrayValidatorBase(abc.ABC):
    """Class-style array validator (the paper's ``ArrayValidator``)."""

    @abc.abstractmethod
    def is_valid(self, value: bytes) -> bool:
        """Return whether ``value`` is acceptable in this context."""

    def __call__(self, value: bytes) -> bool:
        return self.is_valid(value)


def accept_all_binary(value: int, proof: Optional[bytes]) -> bool:
    """The trivial binary predicate (plain binary agreement)."""
    return True


def accept_all_array(value: bytes) -> bool:
    """The trivial array predicate."""
    return True
