"""Dynamic membership: epoch-based group reconfiguration (Sec. 6 outlook).

The dealt group is a fixed set of *slots*; a :class:`Roster` maps slots to
member uids and advances one epoch per committed configuration change.
Changes travel through the totally-ordered channel itself, so every honest
replica cuts over at the same slot; :class:`EpochKeychain` derives the
epoch's refreshed key shares (proactive share refresh — same group keys,
new polynomials) and :class:`ReconfigurableService` drives the barrier,
the channel hand-off, and newcomer onboarding via certified checkpoints.
"""

from repro.membership.epoch import EpochKeychain, EpochMaterial
from repro.membership.roster import (
    MembershipChange,
    Roster,
    make_reconfig_command,
    parse_reconfig_command,
)
from repro.membership.service import ReconfigurableService

__all__ = [
    "EpochKeychain",
    "EpochMaterial",
    "MembershipChange",
    "ReconfigurableService",
    "Roster",
    "make_reconfig_command",
    "parse_reconfig_command",
]
