"""Epoch-based group reconfiguration over the recovery subsystem.

``ReconfigurableService`` is a :class:`~repro.recovery.service.
RecoverableService` whose group membership can change while the service
runs.  A change is an ordinary ordered request (``reconfigure()`` wraps a
:class:`~repro.membership.roster.MembershipChange` into a tagged payload
and submits it); the slot at which the first admissible change for the
current epoch commits is the **epoch barrier**:

1. the atomic channel recognizes the barrier record at delivery (a pure
   predicate every honest replica evaluates at the same slot), stops
   delivering mid-batch, aborts in-flight agreement rounds, and freezes;
2. when the barrier command reaches the application (the same deferred
   FIFO every command uses, so everything ordered before it has been
   applied), the replica derives the epoch ``e + 1`` key material from
   the :class:`~repro.membership.epoch.EpochKeychain` — rotated coin /
   TDH2 / Shoup shares, stable group keys — and swaps it into its
   crypto context;
3. the frozen channel's undelivered records are harvested and the
   replica opens the successor channel under the epoch-tagged protocol
   id (``<pid>@e<epoch>``), resuming at round 1 with the carried-over
   queue, so no accepted request is dropped or reordered;
4. the barrier slot is checkpointed immediately (``force=True``), giving
   a joining successor a certified package to onboard from without
   waiting out the checkpoint interval.

Cross-epoch messages are doubly rejected: the old protocol id is
tombstoned at the router (frames are dropped), and every signed
statement embeds the epoch-tagged pid — plus, in Shoup mode and for
coin/TDH2 shares, the verification keys themselves rotated, so a share
from epoch ``e`` is cryptographically invalid in ``e + 1`` (the mobile-
adversary argument; see docs/MEMBERSHIP.md).

Epoch 0 deliberately uses the *untagged* pid and the dealt epoch-0
material, so a reconfigurable service in a group that never reconfigures
is wire- and checkpoint-compatible with the surrounding test and
benchmark corpus.
"""

from __future__ import annotations

import json
import os
from typing import Any, List, Optional, Set, Tuple

from repro.common.errors import (
    ConfigError,
    EpochMismatch,
    ReconfigInProgress,
)
from repro.core.channel.atomic import KIND_APP, KIND_CLOSE
from repro.core.party import Party
from repro.membership.epoch import EpochKeychain
from repro.membership.roster import (
    MembershipChange,
    Roster,
    make_reconfig_command,
    parse_reconfig_command,
)
from repro.recovery.checkpoint import make_package
from repro.recovery.service import RecoverableService, RecoveryError
from repro.recovery.wal import SlotTuple

EPOCH_STATE_FILE = "epoch.json"


class ReconfigurableService(RecoverableService):
    """A recoverable replica whose group can reconfigure between epochs."""

    def __init__(
        self,
        party: Party,
        pid: str,
        state_machine,
        directory: str,
        keychain: EpochKeychain,
        roster: Optional[Roster] = None,
        min_epoch: int = 0,
        **kwargs: Any,
    ):
        self.keychain = keychain
        initial = roster if roster is not None else Roster.initial(keychain.group.n)
        if initial.epoch != 0:
            raise ConfigError("the configured roster must be the epoch-0 roster")
        self._roster = initial
        self._initial_roster = initial
        self._base_roster_obj = initial
        self._reconfiguring = False
        self._e2e_open = False
        self._crypto_epoch = 0
        #: ``callback(event, value)`` where event is ``"barrier"`` (value:
        #: the frozen channel's round) or ``"epoch"`` (value: the epoch
        #: just entered).  The liveness watchdog suspends across the
        #: barrier window through this hook; the recovery orchestrator
        #: tracks commit progress through it.
        self.epoch_listeners: List[Any] = []
        super().__init__(party, pid, state_machine, directory, **kwargs)
        stored = self._load_epoch_state()
        #: the durable epoch floor: state transfer refuses to adopt any
        #: history that ends below it, so a wiped-and-restarted replica
        #: cannot be rolled back behind a reconfiguration it once saw.
        self.min_epoch = max(int(min_epoch), stored)

    # -- epoch bookkeeping ----------------------------------------------------------

    @property
    def membership_epoch(self) -> int:
        return self._roster.epoch

    @property
    def roster(self) -> Roster:
        return self._roster

    def membership_info(self) -> Tuple[int, bytes]:
        return (self._roster.epoch, self._roster.short_digest())

    def _channel_pid(self) -> str:
        epoch = self._roster.epoch
        return self.pid if epoch == 0 else f"{self.pid}@e{epoch}"

    def _epoch_state_path(self) -> str:
        return os.path.join(self.directory, EPOCH_STATE_FILE)

    def _load_epoch_state(self) -> int:
        try:
            with open(self._epoch_state_path(), "r", encoding="utf-8") as fh:
                blob = json.load(fh)
            return int(blob["epoch"])
        except (OSError, ValueError, KeyError, TypeError):
            return 0

    def _save_epoch_state(self) -> None:
        path = self._epoch_state_path()
        tmp = path + ".tmp"
        blob = {"epoch": self._roster.epoch, "members": list(self._roster.members)}
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(blob, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.min_epoch = max(self.min_epoch, self._roster.epoch)

    def _step_roster(self, roster: Roster, data: bytes) -> Optional[Roster]:
        """The successor roster if ``data`` is an admissible barrier
        command for ``roster``'s epoch, else ``None`` (not a reconfig
        command, stale epoch, or inadmissible change).  Pure — the same
        rule drives the live barrier, WAL replay, and package builds."""
        parsed = parse_reconfig_command(data)
        if parsed is None:
            return None
        cmd_epoch, change = parsed
        if cmd_epoch != roster.epoch:
            return None
        try:
            return roster.apply(change, self.party.t)
        except ConfigError:
            return None

    def _sync_epoch_crypto(self) -> None:
        """Swap the epoch key material into the crypto context (no-op if
        the context already holds the current epoch's material)."""
        epoch = self._roster.epoch
        if epoch == self._crypto_epoch:
            return
        started = self.party.ctx.now()
        self.party.ctx.crypto = self.keychain.party_crypto(
            epoch, self._roster, self.party.id
        )
        self._crypto_epoch = epoch
        if self.obs.enabled:
            n = self.keychain.group.n
            self.obs.count("membership.reshare.epochs")
            self.obs.count("membership.reshare.coin_shares", n)
            self.obs.count("membership.reshare.enc_shares", n)
            if self.keychain.group.sig_mode == "shoup":
                self.obs.count("membership.reshare.sig_shares", 2 * n)
            self.obs.observe(
                "membership.reshare.seconds", self.party.ctx.now() - started
            )

    # -- the reconfiguration API ----------------------------------------------------

    def reconfigure(self, change: MembershipChange) -> int:
        """Submit ``change`` for the current epoch through the total
        order; returns the epoch the change creates once it commits.

        Raises :class:`~repro.common.errors.ConfigError` if the change is
        inadmissible against the current roster, and the usual submit
        errors (:class:`ReconfigInProgress`, ``ChannelCongested``,
        ``ServiceNotOpen``).  Any replica may submit; the first
        admissible command to commit wins and the rest become no-ops.
        """
        target = self._roster.apply(change, self.party.t)
        self.submit(make_reconfig_command(self._roster.epoch, change))
        if self.obs.enabled:
            self.obs.count("membership.reconfig.requested")
            if not self._e2e_open:
                self._e2e_open = True
                self.obs.phase(self._mem_scope(), "membership.reconfig.e2e")
        return target.epoch

    def refresh_shares(self) -> int:
        """Proactive refresh: rotate every share without changing the
        roster (the mobile-adversary countermeasure)."""
        return self.reconfigure(MembershipChange("refresh"))

    def drain_and_replace(self, slot: int, member: str) -> int:
        """Evict the replica in ``slot`` and seat ``member`` there, in one
        epoch step.  Every share rotates at the barrier, so the evicted
        replica's material is stale the moment the change commits — this
        is the programmatic surgery primitive the recovery orchestrator
        (:mod:`repro.heal`) drives; the evicted replica must already be
        fenced (shut down) by the caller."""
        return self.reconfigure(MembershipChange("replace", slot=slot, member=member))

    def retire_slot(self, slot: int) -> int:
        """Evict the replica in ``slot`` leaving the seat vacant (at most
        ``t`` vacancies).  Used when no spare replica is available — the
        group degrades but stale shares still rotate out."""
        return self.reconfigure(MembershipChange("retire", slot=slot))

    def submit(self, command: bytes, epoch: Optional[int] = None) -> None:
        if self._reconfiguring:
            raise ReconfigInProgress(
                f"service {self.pid!r} is between membership epochs; "
                "retry after the transition completes"
            )
        super().submit(command, epoch=epoch)

    def _mem_scope(self) -> Tuple[int, str]:
        return (self.party.id, f"{self.pid}:mem")

    # -- channel hooks --------------------------------------------------------------

    def _open_channel(self, **extra_kwargs: Any):
        if self._roster.epoch < self.min_epoch:
            # start() replayed local durable state that ends before the
            # floor (e.g. a wiped successor booting locally): the replica
            # must recover() from peers instead of going live stale.
            raise EpochMismatch(
                f"local state ends at membership epoch {self._roster.epoch}, "
                f"below this replica's floor {self.min_epoch}; recover() "
                "from the group instead of start()"
            )
        self._sync_epoch_crypto()
        if self.obs.enabled:
            self.obs.set_gauge("membership.epoch", float(self._roster.epoch))
        return super()._open_channel(**extra_kwargs)

    def _hook_channel(self) -> None:
        super()._hook_channel()
        self.channel.barrier_predicate = self._barrier_predicate
        self.channel.on_barrier = self._on_barrier

    def _barrier_predicate(self, data: bytes) -> bool:
        return self._step_roster(self._roster, data) is not None

    def _on_barrier(self, _round: int) -> None:
        # Delivery-time: the channel just froze.  The transition itself
        # runs when the barrier command reaches _on_command through the
        # ordered apply FIFO; until then new submissions are refused with
        # the typed retryable error.
        self._reconfiguring = True
        if self.obs.enabled:
            self.obs.count("membership.barrier")
        for callback in self.epoch_listeners:
            callback("barrier", _round)

    # -- ordered command handling ----------------------------------------------------

    def _on_command(self, command: bytes) -> None:
        new_roster = self._step_roster(self._roster, command)
        if new_roster is None and parse_reconfig_command(command) is None:
            super()._on_command(command)
            return
        # A reconfiguration command: it occupies a slot (and advances the
        # applied sequence) but never reaches the state machine.
        index = self._apply_fifo.popleft() if self._apply_fifo else None
        if new_roster is None:
            # Stale (raced with another change for the same epoch) or
            # inadmissible: a deterministic no-op on every replica.
            if self.obs.enabled:
                self.obs.count("membership.reconfig.stale")
        else:
            self._transition(new_roster)
        if index is None:
            return
        self._applied_seq = index + 1
        self._maybe_checkpoint(index + 1, force=new_roster is not None)

    def _transition(self, new_roster: Roster) -> None:
        """The epoch cutover: swap key material, carry the frozen
        channel's undelivered records into the successor channel."""
        old_channel = self.channel
        self._roster = new_roster
        self._save_epoch_state()
        harvest: dict = {}
        if old_channel is not None:
            harvest = old_channel.harvest_resume()
            old_channel.abort()
        self._open_channel(resume_round=1, **harvest)
        self._hook_channel()
        if old_channel is not None:
            # Late own-submissions still racing toward the old object are
            # forwarded so their sequence numbers allocate on the live
            # channel (see AtomicChannel._enqueue_own).
            old_channel.successor = self.channel
        self._reconfiguring = False
        if self.obs.enabled:
            self.obs.count("membership.reconfig.committed")
            if self._e2e_open:
                self._e2e_open = False
                self.obs.phase_end(self._mem_scope())
        for callback in self.epoch_listeners:
            callback("epoch", new_roster.epoch)

    # -- durable state across the epoch boundary --------------------------------------

    def _set_package_base(
        self, epoch: int, roster: Optional[List[Optional[str]]]
    ) -> None:
        if roster is None:
            if epoch != 0:
                raise RecoveryError(
                    f"epoch {epoch} checkpoint package carries no roster"
                )
            self._base_roster_obj = self._initial_roster
        else:
            if len(roster) != self.keychain.group.n:
                raise RecoveryError("checkpoint roster has the wrong slot count")
            self._base_roster_obj = Roster(epoch=epoch, members=tuple(roster))
        self._base_epoch = epoch
        self._base_roster = roster

    def _check_transfer_epoch(
        self,
        epoch: int,
        roster: Optional[List[Optional[str]]],
        tail: List[SlotTuple],
    ) -> None:
        """Refuse transfer responses that would land below the epoch
        floor — a mobile adversary must not be able to serve a stale but
        genuinely certified pre-reconfiguration history to a successor."""
        if roster is None:
            walk = self._initial_roster
        else:
            if epoch < 0 or len(roster) != self.keychain.group.n:
                raise EpochMismatch("transfer package roster malformed")
            walk = Roster(epoch=epoch, members=tuple(roster))
        for _index, _origin, _oseq, kind, data, _round in tail:
            if kind == KIND_APP:
                step = self._step_roster(walk, data)
                if step is not None:
                    walk = step
        if walk.epoch < self.min_epoch:
            if self.obs.enabled:
                self.obs.count("membership.transfer.stale_epoch")
            raise EpochMismatch(
                f"transfer response ends at membership epoch {walk.epoch}, "
                f"below this replica's floor {self.min_epoch}"
            )

    def _absorb_tail(
        self, tail: List[SlotTuple], apply: bool
    ) -> Tuple[List[Tuple[int, int]], Set[int], int]:
        """WAL replay across epoch boundaries.

        A barrier slot ends its epoch: the roster steps forward and the
        round accumulator resets to 1, because the successor channel
        numbered its rounds from 1 again.  Records after the barrier in
        the tail therefore carry new-channel rounds, and the computed
        resume round is always relative to the *final* epoch's channel.
        """
        roster = self._base_roster_obj
        delivered: List[Tuple[int, int]] = list(self._base_delivered)
        closes: Set[int] = set(self._base_closes)
        round_now = self._base_round
        for _index, origin, oseq, kind, data, round_ in tail:
            delivered.append((origin, oseq))
            if kind == KIND_CLOSE:
                closes.add(origin)
                round_now = max(round_now, round_ + 1)
                continue
            if kind == KIND_APP:
                step = self._step_roster(roster, data)
                if step is not None:
                    roster = step
                    round_now = 1  # successor channel restarts its rounds
                    continue  # barrier commands never reach the state machine
                if apply:
                    result = self.state.apply(data)
                    self.log.append((data, result))
            round_now = max(round_now, round_ + 1)
        self._roster = roster
        return delivered, closes, round_now

    def _build_package(self, seq: int) -> Optional[bytes]:
        """The deterministic checkpoint package covering slots ``< seq``,
        carrying the membership epoch and roster in force at the
        boundary.  The walk replays reconfiguration commands from the
        certified base so the epoch fields — like everything else in the
        package — are a pure function of the slot sequence."""
        boundary = self.wal.slots.get(seq - 1)
        if boundary is None:
            return None
        roster = self._base_roster_obj
        delivered = list(self._base_delivered)
        closes = set(self._base_closes)
        barrier_index = None
        for index in sorted(self.wal.slots):
            if index >= seq:
                break
            origin, oseq, kind, data, _round = self.wal.slots[index]
            delivered.append((origin, oseq))
            if kind == KIND_CLOSE:
                closes.add(origin)
            elif kind == KIND_APP:
                step = self._step_roster(roster, data)
                if step is not None:
                    roster = step
                    barrier_index = index
        if len(delivered) != seq:
            return None
        # A package cut exactly at the barrier resumes the successor
        # channel from scratch; otherwise the boundary slot's round is a
        # round of the epoch in force at the boundary.
        base_round = 1 if barrier_index == seq - 1 else boundary[4] + 1
        return make_package(
            self.state.snapshot(),
            delivered,
            sorted(closes),
            base_round,
            epoch=roster.epoch,
            roster=list(roster.members),
        )


__all__ = ["ReconfigurableService", "EPOCH_STATE_FILE"]
