"""Per-epoch threshold key material, derived deterministically.

A reconfiguration epoch needs every (surviving and joining) replica to
agree on the refreshed shares *without a live dealer round*: the dealer
in SINTRA is an offline, trusted setup step, and we keep it that way by
making epoch material a pure function of

    (epoch-0 dealt material, epoch number, epoch roster).

Every replica that knows the epoch-0 secrets — which is exactly the set
of slot holders, since slots are dealt once and handed over out of band
with the slot's durable directory — can derive the material for *any*
epoch locally.  Derivation is non-chained (always from epoch 0, never
from epoch ``e - 1``), so a replica that slept through epochs 3..7 jumps
straight to 8 without replaying intermediate reshares.

What rotates per epoch, and what must not:

* **Coin** (Diffie-Hellman threshold coin): shares and per-party
  verification keys rotate via a zero-constant refresh polynomial; the
  group key ``global_vk = g^x`` is unchanged, so coin *values* are
  identical across epochs (agreement randomness stays consistent).
* **TDH2 encryption**: same construction; the public key ``h`` (and its
  derived ``gbar``) is stable so external clients never re-key, while
  decryption shares rotate.
* **Shoup threshold RSA** (``sig_mode="shoup"``): a fresh deal over the
  *same* cached safe primes — identical ``(modulus, e, d)``, so old
  combined signatures (checkpoint certificates!) verify forever, but a
  brand-new share polynomial and verification base ``v``.
* **Multi-signature mode**: per-party RSA keys are identity-bound, not
  threshold-shared; nothing rotates.  Cross-epoch separation comes from
  the epoch-tagged channel pid, which is baked into every signed
  statement's domain.

The derivation seed mixes a ``base_tag`` — a hash of the epoch-0 public
keys and share vectors — so two different deployments never share epoch
material even if they agree on epoch number and roster uids.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.encoding import encode
from repro.common.errors import ConfigError
from repro.crypto import reshare
from repro.crypto.coin import ThresholdCoin
from repro.crypto.dealer import SIG_MODE_SHOUP, GroupConfig, PartyCrypto
from repro.crypto.threshold_enc import TDH2Scheme
from repro.crypto.threshold_sig import ShoupThresholdScheme
from repro.membership.roster import Roster


@dataclass(frozen=True)
class EpochMaterial:
    """Everything epoch-specific: refreshed schemes plus the full share
    vectors (1-based order), from which any slot's holder is built."""

    epoch: int
    roster_members: Tuple[Optional[str], ...]
    coin: ThresholdCoin
    coin_shares: Tuple[int, ...]
    enc: TDH2Scheme
    enc_shares: Tuple[int, ...]
    cbc: Optional[ShoupThresholdScheme] = None
    cbc_shares: Optional[Tuple[int, ...]] = None
    aba: Optional[ShoupThresholdScheme] = None
    aba_shares: Optional[Tuple[int, ...]] = None


class EpochKeychain:
    """Derives and caches :class:`EpochMaterial` for a dealt group."""

    def __init__(self, group: GroupConfig):
        if not group.parties:
            raise ConfigError("keychain needs a group with party bundles")
        self.group = group
        base = group.parties[0]
        self._coin0 = base.coin
        self._enc0 = base.enc
        self._coin_shares0 = self._base_shares("coin")
        self._enc_shares0 = self._base_shares("enc")
        self._shoup = group.sig_mode == SIG_MODE_SHOUP
        if self._shoup:
            self._cbc0 = base.cbc_scheme
            self._aba0 = base.aba_scheme
        tag_material = encode(
            (
                self._coin0.public.global_vk,
                self._enc0.public.h,
                list(self._coin_shares0),
                list(self._enc_shares0),
            )
        )
        self._base_tag = hashlib.sha256(tag_material).hexdigest()
        self._cache: Dict[Tuple[int, Tuple[Optional[str], ...]], EpochMaterial] = {}

    def _base_shares(self, kind: str) -> Tuple[int, ...]:
        raw = self.group.raw
        if raw is not None and kind in raw and "shares" in raw[kind]:
            return tuple(int(s) for s in raw[kind]["shares"])
        # A config loaded from one party's secret file only knows that
        # party's own share, which cannot seed a refresh of the whole
        # vector — the trusted-dealer role (paper Sec. 2) extends to
        # epoch derivation.
        raise ConfigError(
            f"group config lacks raw {kind!r} share vectors; epoch material "
            "must be derived where the dealer output is available and "
            "distributed via repro.crypto.config_io"
        )

    # -- derivation -----------------------------------------------------------

    def material(self, epoch: int, roster: Roster) -> EpochMaterial:
        """The material for ``epoch`` under ``roster`` (cached)."""
        if epoch < 0:
            raise ConfigError(f"epoch must be non-negative, got {epoch}")
        if roster.n != self.group.n:
            raise ConfigError(
                f"roster has {roster.n} slots but the group was dealt for "
                f"{self.group.n}"
            )
        key = (epoch, roster.members)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        if epoch == 0:
            material = EpochMaterial(
                epoch=0,
                roster_members=roster.members,
                coin=self._coin0,
                coin_shares=self._coin_shares0,
                enc=self._enc0,
                enc_shares=self._enc_shares0,
                cbc=self._cbc0 if self._shoup else None,
                cbc_shares=None,
                aba=self._aba0 if self._shoup else None,
                aba_shares=None,
            )
        else:
            rng = random.Random(
                repr(
                    (
                        "repro.membership.reshare",
                        self._base_tag,
                        epoch,
                        list(roster.members),
                    )
                )
            )
            coin, coin_shares = reshare.refresh_coin(
                self._coin0, self._coin_shares0, rng
            )
            enc, enc_shares = reshare.refresh_enc(self._enc0, self._enc_shares0, rng)
            cbc = aba = None
            cbc_shares = aba_shares = None
            if self._shoup:
                bits = self.group.security.sig_modbits
                cbc, cbc_list = reshare.redeal_shoup(self._cbc0, bits, rng)
                aba, aba_list = reshare.redeal_shoup(self._aba0, bits, rng)
                cbc_shares = tuple(cbc_list)
                aba_shares = tuple(aba_list)
            material = EpochMaterial(
                epoch=epoch,
                roster_members=roster.members,
                coin=coin,
                coin_shares=tuple(coin_shares),
                enc=enc,
                enc_shares=tuple(enc_shares),
                cbc=cbc,
                cbc_shares=cbc_shares,
                aba=aba,
                aba_shares=aba_shares,
            )
        self._cache[key] = material
        return material

    def party_crypto(self, epoch: int, roster: Roster, index0: int) -> PartyCrypto:
        """The epoch-``epoch`` crypto bundle for slot ``index0``.

        Identity material (per-party RSA keys, pairwise MAC keys) is
        stable across epochs — a slot's transport identity does not
        change when its threshold shares rotate — so only the threshold
        schemes and holders are replaced."""
        base = self.group.party(index0)
        if epoch == 0:
            return base
        m = self.material(epoch, roster)
        share_index = index0 + 1
        replacements = dict(
            coin=m.coin,
            coin_holder=m.coin.holder(share_index, m.coin_shares[index0]),
            enc=m.enc,
            enc_holder=m.enc.holder(share_index, m.enc_shares[index0]),
        )
        if self._shoup:
            assert m.cbc is not None and m.cbc_shares is not None
            assert m.aba is not None and m.aba_shares is not None
            replacements.update(
                cbc_scheme=m.cbc,
                cbc_signer=m.cbc.signer(share_index, m.cbc_shares[index0]),
                aba_scheme=m.aba,
                aba_signer=m.aba.signer(share_index, m.aba_shares[index0]),
            )
        return dataclasses.replace(base, **replacements)


__all__ = ["EpochKeychain", "EpochMaterial"]
