"""Group rosters and the ordered reconfiguration commands that move them.

SINTRA's dealer hands out ``n`` share *slots* once, at setup; those slots
are fixed for the lifetime of the deployment (the threshold schemes are
dealt for exactly ``n`` evaluation points).  What *can* change is which
operational replica currently holds each slot.  A :class:`Roster` is that
mapping — ``members[slot]`` is the uid of the replica occupying slot
``slot``, or ``None`` while the slot is vacant (a retired replica whose
successor has not joined yet).  Every roster belongs to a membership
*epoch*; applying a :class:`MembershipChange` yields the epoch ``e + 1``
roster.

Reconfiguration rides the total order: :func:`make_reconfig_command`
wraps a change in a tagged payload that is submitted like any other
request.  Whichever replica's copy commits first wins; replicas parse
delivered payloads with :func:`parse_reconfig_command` and treat the
first command matching their current epoch as the epoch barrier.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.encoding import decode, encode
from repro.common.errors import ConfigError, EncodingError

CHANGE_REFRESH = "refresh"
CHANGE_REPLACE = "replace"
CHANGE_RETIRE = "retire"
CHANGE_JOIN = "join"

_CHANGE_KINDS = (CHANGE_REFRESH, CHANGE_REPLACE, CHANGE_RETIRE, CHANGE_JOIN)

_COMMAND_TAG = "sintra-reconfig"


@dataclass(frozen=True)
class MembershipChange:
    """One epoch step.

    ``refresh``  — no membership change; rotate key shares only
                   (proactive refresh against a mobile adversary).
    ``replace``  — ``member`` takes over ``slot`` from its current holder.
    ``retire``   — vacate ``slot`` (its holder leaves; no successor yet).
    ``join``     — ``member`` fills the vacant ``slot``.
    """

    kind: str
    slot: Optional[int] = None
    member: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _CHANGE_KINDS:
            raise ConfigError(f"unknown membership change kind {self.kind!r}")
        if self.kind == CHANGE_REFRESH:
            if self.slot is not None or self.member is not None:
                raise ConfigError("refresh takes no slot or member")
        elif self.kind == CHANGE_RETIRE:
            if self.slot is None or self.member is not None:
                raise ConfigError("retire takes a slot and no member")
        else:
            if self.slot is None or not self.member:
                raise ConfigError(f"{self.kind} takes a slot and a member uid")


@dataclass(frozen=True)
class Roster:
    """The slot → member-uid mapping for one membership epoch."""

    epoch: int
    members: Tuple[Optional[str], ...]

    @classmethod
    def initial(cls, n: int, uids: Optional[Tuple[str, ...]] = None) -> "Roster":
        if uids is None:
            uids = tuple(f"replica-{i}" for i in range(n))
        if len(uids) != n:
            raise ConfigError(f"expected {n} uids, got {len(uids)}")
        return cls(epoch=0, members=tuple(uids))

    @property
    def n(self) -> int:
        return len(self.members)

    def vacancies(self) -> int:
        return sum(1 for m in self.members if m is None)

    def slot_of(self, member: str) -> Optional[int]:
        for slot, uid in enumerate(self.members):
            if uid == member:
                return slot
        return None

    def apply(self, change: MembershipChange, t: int) -> "Roster":
        """The epoch ``e + 1`` roster, or :class:`ConfigError` if the
        change is inadmissible (bad slot, occupancy conflict, duplicate
        uid, or more than ``t`` vacant slots — beyond ``t`` vacancies the
        remaining group could not even clear the ``n - t`` agreement
        threshold, so the change would wedge the channel)."""
        members = list(self.members)
        if change.kind != CHANGE_REFRESH:
            slot = change.slot
            assert slot is not None
            if not 0 <= slot < len(members):
                raise ConfigError(f"slot {slot} out of range for n={len(members)}")
            if change.member is not None:
                if change.member in members and members.index(change.member) != slot:
                    raise ConfigError(
                        f"member {change.member!r} already holds another slot"
                    )
            if change.kind == CHANGE_REPLACE:
                if members[slot] is None:
                    raise ConfigError(f"slot {slot} is vacant; use join")
                members[slot] = change.member
            elif change.kind == CHANGE_RETIRE:
                if members[slot] is None:
                    raise ConfigError(f"slot {slot} is already vacant")
                members[slot] = None
            else:  # join
                if members[slot] is not None:
                    raise ConfigError(f"slot {slot} is occupied; use replace")
                members[slot] = change.member
        nxt = Roster(epoch=self.epoch + 1, members=tuple(members))
        if nxt.vacancies() > t:
            raise ConfigError(
                f"change would leave {nxt.vacancies()} vacant slots (> t={t})"
            )
        return nxt

    def digest(self) -> bytes:
        return hashlib.sha256(encode((self.epoch, list(self.members)))).digest()

    def short_digest(self) -> bytes:
        """The 8-byte prefix carried in client reply frames."""
        return self.digest()[:8]


def make_reconfig_command(epoch: int, change: MembershipChange) -> bytes:
    """The ordered-request payload for a change applied at ``epoch``."""
    return encode((_COMMAND_TAG, epoch, change.kind, change.slot, change.member))


def parse_reconfig_command(payload: bytes):
    """``(epoch, MembershipChange)`` if ``payload`` is a reconfiguration
    command, else ``None`` (ordinary application payloads never collide:
    the canonical encoding of the tagged tuple is unambiguous)."""
    try:
        value = decode(payload)
    except EncodingError:
        return None
    if (
        not isinstance(value, (tuple, list))
        or len(value) != 5
        or value[0] != _COMMAND_TAG
    ):
        return None
    _tag, epoch, kind, slot, member = value
    if not isinstance(epoch, int) or not isinstance(kind, str):
        return None
    if slot is not None and not isinstance(slot, int):
        return None
    if member is not None and not isinstance(member, str):
        return None
    try:
        change = MembershipChange(kind=kind, slot=slot, member=member)
    except ConfigError:
        return None
    return epoch, change


__all__ = [
    "CHANGE_JOIN",
    "CHANGE_REFRESH",
    "CHANGE_REPLACE",
    "CHANGE_RETIRE",
    "MembershipChange",
    "Roster",
    "make_reconfig_command",
    "parse_reconfig_command",
]
