"""Command-line experiment runner.

Regenerates the paper's tables and figures from the terminal::

    python -m repro.experiments table1
    python -m repro.experiments fig4 --messages 120
    python -m repro.experiments fig5 fig6
    python -m repro.experiments all --messages 60

Every run records into :mod:`repro.obs` and exports one machine-readable
``BENCH_<name>.json`` per experiment into ``--bench-dir`` (default: the
current directory; ``--bench-dir ''`` disables exporting).  A directory
of exported records is re-rendered with::

    python -m repro.experiments report --bench-dir runs/

The same experiments run as shape-asserting benchmarks under
``pytest benchmarks/ --benchmark-only``; this entry point is for
interactive exploration and for reproducing EXPERIMENTS.md by hand.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.crypto.params import SecurityParams
from repro.experiments import report
from repro.experiments.runner import export_result, run_channel_experiment
from repro.experiments.setups import HYBRID_SETUP, INTERNET_SETUP, LAN_SETUP
from repro.net.latency import FIG3_RTT_MS, INTERNET_SITE_NAMES
from repro.obs.recorder import MemoryRecorder

EXPERIMENTS = ("fig3", "table1", "fig4", "fig5", "fig6", "all", "report")


def _run(args: argparse.Namespace, setup, channel, senders, messages,
         *, name: str, experiment: str, **kwargs):
    """One recorded experiment run, exported as ``BENCH_<name>.json``."""
    recorder = MemoryRecorder()
    result = run_channel_experiment(
        setup, channel, senders=senders, messages=messages,
        seed=args.seed, recorder=recorder, **kwargs,
    )
    path = export_result(
        result, recorder, name=name, experiment=experiment,
        meta={"seed": args.seed}, bench_dir=args.bench_dir or None,
    )
    if path:
        print(f"  wrote {path}", file=sys.stderr)
    return result


def cmd_fig3(args: argparse.Namespace) -> None:
    print("Figure 3 — Internet testbed round-trip times (ms):")
    rows = [
        [INTERNET_SITE_NAMES[a], INTERNET_SITE_NAMES[b], rtt]
        for (a, b), rtt in sorted(FIG3_RTT_MS.items(), key=lambda kv: kv[1])
    ]
    print(report.format_table(["site A", "site B", "RTT (ms)"], rows))


def cmd_table1(args: argparse.Namespace) -> None:
    measured = {}
    for setup in (LAN_SETUP, INTERNET_SETUP, HYBRID_SETUP):
        scale = 0.5 if setup.n == 7 else 1.0
        for channel in ("atomic", "secure", "reliable", "consistent"):
            t0 = time.time()
            result = _run(
                args, setup, channel, [0],
                max(6, int(args.messages * scale)),
                name=f"table1-{setup.name}-{channel}", experiment="table1",
            )
            measured[(setup.name, channel)] = result.mean_delivery_s
            print(
                f"  ran {setup.name}/{channel}: {result.mean_delivery_s:.2f}s "
                f"simulated mean ({time.time() - t0:.1f}s wall)",
                file=sys.stderr,
            )
    print()
    print(report.table1_report(measured))


def _figure_run(setup, senders, names, args, *, figure: str) -> None:
    result = _run(
        args, setup, "atomic", senders,
        max(len(senders) * 6, args.messages),
        name=f"{figure}-{setup.name}", experiment=figure,
    )
    print(f"{result.count} deliveries in {result.sim_seconds:.1f}s simulated; "
          f"mean {result.mean_delivery_s:.2f}s/delivery")
    gaps = result.gaps()[1:]
    low, high = report.band_fractions(gaps, low_band_max=0.05)
    print(f"bands: {low:.0%} at ~0s (in-batch), {high:.0%} paying the round trip")
    series = result.gap_series_by_sender()
    print(report.text_scatter(series, names=names))
    print(report.series_summary(series, names=names))


def cmd_fig4(args: argparse.Namespace) -> None:
    print("Figure 4 — AtomicChannel on the LAN, senders P0/P2/P3:")
    _figure_run(LAN_SETUP, [0, 2, 3], ["P0/Linux", "P1", "P2/AIX", "P3/Win2k"],
                args, figure="fig4")


def cmd_fig5(args: argparse.Namespace) -> None:
    print("Figure 5 — AtomicChannel on the Internet, senders Zurich/Tokyo/NY:")
    _figure_run(INTERNET_SETUP, [0, 1, 2], list(INTERNET_SITE_NAMES),
                args, figure="fig5")


def cmd_fig6(args: argparse.Namespace) -> None:
    print("Figure 6 — delivery time vs key size (ts = Shoup threshold sigs):")
    key_sizes = (128, 256, 512, 1024)
    rows = []
    for setup in (LAN_SETUP, INTERNET_SETUP):
        for mode, label in (("shoup", "ts"), ("multi", "multi")):
            row = [f"{setup.name} {label}"]
            for ks in key_sizes:
                sec = SecurityParams(sig_modbits=256, dl_bits=256, nominal_bits=ks)
                result = _run(
                    args, setup, "atomic", [0],
                    max(6, args.messages // 3),
                    name=f"fig6-{setup.name}-{label}-{ks}b", experiment="fig6",
                    sig_mode=mode, security=sec,
                )
                row.append(result.mean_delivery_s)
                print(f"  ran {setup.name}/{label}/{ks}b", file=sys.stderr)
            rows.append(row)
    print(report.format_table(["series"] + [str(k) for k in key_sizes], rows))


def cmd_report(args: argparse.Namespace) -> None:
    print(report.run_dir_report(args.bench_dir or "."))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="+", choices=EXPERIMENTS,
                        help="which experiments to run (or 'report' to "
                             "re-render an exported run directory)")
    parser.add_argument("--messages", type=int, default=24,
                        help="messages per experiment (paper: 500-1000)")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--bench-dir", default=".",
                        help="directory for BENCH_*.json exports "
                             "(default: current directory; '' disables)")
    args = parser.parse_args(argv)

    chosen = list(args.experiments)
    if "all" in chosen:
        chosen = ["fig3", "table1", "fig4", "fig5", "fig6"]
    handlers = {
        "fig3": cmd_fig3, "table1": cmd_table1, "fig4": cmd_fig4,
        "fig5": cmd_fig5, "fig6": cmd_fig6, "report": cmd_report,
    }
    for name in chosen:
        handlers[name](args)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
