"""The paper's three experimental configurations (Sec. 4).

* **LAN** — four heterogeneous machines on the 100 Mbit/s switched
  Ethernet of the IBM Zurich lab (``n = 4``, ``t = 1``);
* **Internet** — four machines on three continents (Zurich, Tokyo, New
  York, California) connected by the IBM intranet with the Figure 3 RTTs
  (``n = 4``, ``t = 1``);
* **LAN+I'net** — the hybrid of both, seven machines with ``n = 7``,
  ``t = 2`` (P0/Zurich is part of both setups, as in the paper).

The batch size of the atomic broadcast channel is ``t + 1`` and the
candidate order of multi-valued agreement is randomized from local
information, matching the paper's test configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.net.costmodel import HYBRID_HOSTS, INTERNET_HOSTS, LAN_HOSTS, HostSpec
from repro.net.latency import (
    LatencyModel,
    hybrid_latency,
    internet_latency,
    lan_latency,
)


@dataclass(frozen=True)
class Setup:
    """One testbed configuration."""

    name: str
    n: int
    t: int
    hosts: Sequence[HostSpec]
    latency_factory: Callable[[], LatencyModel]
    #: node on which delivery timing is measured (P0/Zurich in the paper)
    measure_at: int = 0

    def latency(self) -> LatencyModel:
        return self.latency_factory()

    def host_names(self) -> List[str]:
        return [f"{h.name}/{h.location}" for h in self.hosts]


LAN_SETUP = Setup("LAN", n=4, t=1, hosts=LAN_HOSTS, latency_factory=lan_latency)

INTERNET_SETUP = Setup(
    "Internet", n=4, t=1, hosts=INTERNET_HOSTS, latency_factory=internet_latency
)

HYBRID_SETUP = Setup(
    "LAN+I'net", n=7, t=2, hosts=HYBRID_HOSTS, latency_factory=hybrid_latency
)

ALL_SETUPS = (LAN_SETUP, INTERNET_SETUP, HYBRID_SETUP)
