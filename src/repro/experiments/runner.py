"""Drives one channel experiment and collects per-delivery timings.

The paper's measurement procedure (Sec. 4): a test program opens a channel,
one or more servers send short payload messages (< 32 bytes) to the group
at maximum capacity, and the elapsed time between successive deliveries of
two messages is measured on a recipient.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.core.party import make_parties
from repro.crypto import fastexp
from repro.crypto.dealer import SIG_MODE_MULTI, fast_group
from repro.crypto.params import SecurityParams
from repro.experiments.setups import Setup
from repro.net.runtime import SimRuntime
from repro.obs import export as obs_export
from repro.obs.recorder import Recorder

CHANNEL_ATOMIC = "atomic"
CHANNEL_SECURE = "secure"
CHANNEL_RELIABLE = "reliable"
CHANNEL_CONSISTENT = "consistent"

ChannelKind = str

ALL_CHANNELS = (CHANNEL_ATOMIC, CHANNEL_SECURE, CHANNEL_RELIABLE, CHANNEL_CONSISTENT)


def _payload(sender: int, k: int) -> bytes:
    """A short (< 32 byte) tagged payload, as in the paper's tests."""
    return b"m:%02d:%05d" % (sender, k)


def parse_payload(data: bytes) -> Tuple[int, int]:
    """Recover ``(sender, index)`` from a test payload."""
    _, s, k = data.split(b":")
    return int(s), int(k)


@dataclass
class ExperimentResult:
    """Timings observed on the measuring recipient."""

    setup: str
    channel: str
    senders: Sequence[int]
    messages: int
    #: (simulated delivery time, payload) in delivery order
    deliveries: List[Tuple[float, bytes]] = field(default_factory=list)
    sim_seconds: float = 0.0
    messages_sent: int = 0
    bytes_sent: int = 0
    #: host wall-clock time of the run (machine-dependent; never CI-gated)
    wall_seconds: float = 0.0

    @property
    def count(self) -> int:
        return len(self.deliveries)

    @property
    def mean_delivery_s(self) -> float:
        """Average time between successive deliveries (the paper's metric)."""
        if len(self.deliveries) < 2:
            return 0.0
        first = self.deliveries[0][0]
        last = self.deliveries[-1][0]
        return (last - first) / (len(self.deliveries) - 1)

    def gaps(self) -> List[float]:
        """Per-delivery time: gap to the previous delivery (Figures 4/5)."""
        out: List[float] = []
        prev: Optional[float] = None
        for when, _ in self.deliveries:
            out.append(0.0 if prev is None else when - prev)
            prev = when
        return out

    def gap_series_by_sender(self) -> Dict[int, List[Tuple[int, float]]]:
        """Figure 4/5 series: (delivery number, gap) grouped by sender."""
        series: Dict[int, List[Tuple[int, float]]] = {}
        prev: Optional[float] = None
        for number, (when, payload) in enumerate(self.deliveries):
            gap = 0.0 if prev is None else when - prev
            prev = when
            sender, _ = parse_payload(payload)
            series.setdefault(sender, []).append((number, gap))
        return series


def make_channel(party, kind: ChannelKind, pid: str, **kwargs):
    """Instantiate the channel of the requested kind."""
    if kind == CHANNEL_ATOMIC:
        return party.atomic_channel(pid, **kwargs)
    if kind == CHANNEL_SECURE:
        return party.secure_atomic_channel(pid, **kwargs)
    if kind == CHANNEL_RELIABLE:
        return party.reliable_channel(pid)
    if kind == CHANNEL_CONSISTENT:
        return party.consistent_channel(pid)
    raise ConfigError(f"unknown channel kind {kind!r}")


def run_channel_experiment(
    setup: Setup,
    channel: ChannelKind,
    senders: Sequence[int],
    messages: int,
    sig_mode: str = SIG_MODE_MULTI,
    security: Optional[SecurityParams] = None,
    seed: object = 0,
    time_limit: float = 50_000.0,
    recorder: Optional[Recorder] = None,
    accel: object = None,
) -> ExperimentResult:
    """Run one experiment and return the recipient's delivery timings.

    ``messages`` is the total number of payloads, split evenly over
    ``senders``; timing is observed on ``setup.measure_at``.  When a
    ``recorder`` is given, the whole stack records into it (phase
    durations on the simulated clock) and per-node CPU gauges are set at
    the end of the run.

    ``accel`` selects the crypto acceleration profile for the run —
    anything :func:`repro.crypto.fastexp.resolve` accepts (``None``/
    ``False`` for the plain implementation, ``True``/``"full"``,
    ``"metered"``, or an :class:`~repro.crypto.fastexp.AccelConfig`).
    Precomputation tables are cleared before the run so records never
    inherit another run's precomputed state.
    """
    cfg = fastexp.resolve(accel) or fastexp.AccelConfig()
    fastexp.clear_tables()  # no cross-run precompute inheritance
    with fastexp.accelerated(cfg):
        return _run_channel_experiment(
            setup, channel, senders, messages, sig_mode, security,
            seed, time_limit, recorder,
        )


def _run_channel_experiment(
    setup: Setup,
    channel: ChannelKind,
    senders: Sequence[int],
    messages: int,
    sig_mode: str,
    security: Optional[SecurityParams],
    seed: object,
    time_limit: float,
    recorder: Optional[Recorder],
) -> ExperimentResult:
    wall_start = time.perf_counter()
    security = security or SecurityParams.small()
    group = fast_group(
        setup.n, setup.t, security, sig_mode=sig_mode, seed=("exp", seed)
    )
    rt = SimRuntime(
        group,
        latency=setup.latency(),
        hosts=setup.hosts,
        seed=("exp", seed),
        recorder=recorder,
    )
    parties = make_parties(rt)
    channels = [make_channel(p, channel, f"exp-{channel}") for p in parties]

    per_sender = messages // len(senders)
    total = per_sender * len(senders)
    for s in senders:
        for k in range(per_sender):
            channels[s].send(_payload(s, k))

    result = ExperimentResult(
        setup=setup.name, channel=channel, senders=tuple(senders), messages=total
    )
    recipient = channels[setup.measure_at]

    def reader():
        while len(result.deliveries) < total:
            payload = yield recipient.receive()
            result.deliveries.append((rt.now, payload))

    proc = rt.spawn(reader())
    rt.run_until(proc.future, limit=time_limit)
    result.sim_seconds = rt.now
    result.messages_sent = rt.messages_sent
    result.bytes_sent = rt.bytes_sent
    result.wall_seconds = time.perf_counter() - wall_start
    if rt.obs.enabled:
        for node in rt.nodes:
            rt.obs.set_gauge(f"node.{node.node_id}.cpu_s", node.cpu_seconds)
    errors = rt.router_errors()
    if errors:
        raise ConfigError(f"honest run produced handler errors: {errors[:3]}")
    return result


# -- benchmark export ----------------------------------------------------------


def result_metrics(result: ExperimentResult) -> Dict[str, float]:
    """The scalar metrics a run contributes to its ``BENCH_*.json``.

    Everything except ``wall_seconds`` is simulator-derived and therefore
    deterministic for a pinned seed — which is what the CI perf gate
    diffs (:data:`repro.obs.export.UNGATED_METRICS` excludes the rest).
    """
    return {
        "sim_seconds": result.sim_seconds,
        "mean_delivery_s": result.mean_delivery_s,
        "deliveries": float(result.count),
        "messages_sent": float(result.messages_sent),
        "bytes_sent": float(result.bytes_sent),
        "wall_seconds": result.wall_seconds,
    }


def bench_record(
    result: ExperimentResult,
    recorder: Optional[Recorder],
    *,
    name: str,
    experiment: str,
    meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the benchmark record for one finished run."""
    full_meta: Dict[str, Any] = {
        "setup": result.setup,
        "channel": result.channel,
        "senders": list(result.senders),
        "messages": result.messages,
    }
    full_meta.update(meta or {})
    return obs_export.make_record(
        name,
        experiment=experiment,
        meta=full_meta,
        metrics=result_metrics(result),
        recorder=recorder,
    )


def export_result(
    result: ExperimentResult,
    recorder: Optional[Recorder],
    *,
    name: str,
    experiment: str,
    meta: Optional[Mapping[str, Any]] = None,
    bench_dir: Optional[str] = None,
) -> Optional[str]:
    """Write ``BENCH_<name>.json`` for a run, if an export dir is set.

    ``bench_dir`` wins; otherwise the ``REPRO_BENCH_DIR`` environment
    variable is consulted.  Returns the written path, or ``None`` when
    exporting is not configured.
    """
    directory = bench_dir if bench_dir is not None else obs_export.bench_dir_from_env()
    if directory is None:
        return None
    record = bench_record(
        result, recorder, name=name, experiment=experiment, meta=meta
    )
    return obs_export.write_record(directory, record)
