"""Paper-style reporting of experiment results.

Formats the measured series/rows in the same shape as the paper's Table 1
and Figures 4-6, side by side with the published values, and provides the
shape checks used by the benchmark suite (EXPERIMENTS.md records the
outcomes).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs import export as obs_export

#: Table 1 of the paper: average delivery times in seconds.
PAPER_TABLE1 = {
    ("LAN", "atomic"): 0.69,
    ("LAN", "secure"): 1.07,
    ("LAN", "reliable"): 0.13,
    ("LAN", "consistent"): 0.11,
    ("Internet", "atomic"): 2.95,
    ("Internet", "secure"): 3.61,
    ("Internet", "reliable"): 0.72,
    ("Internet", "consistent"): 0.83,
    ("LAN+I'net", "atomic"): 2.74,
    ("LAN+I'net", "secure"): 3.79,
    ("LAN+I'net", "reliable"): 0.60,
    ("LAN+I'net", "consistent"): 0.64,
}

TABLE1_CHANNELS = ("atomic", "secure", "reliable", "consistent")
TABLE1_SETUPS = ("LAN", "Internet", "LAN+I'net")


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Monospace table with right-aligned numeric columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def table1_report(measured: Dict[Tuple[str, str], float]) -> str:
    """Render measured Table 1 next to the paper's values."""
    rows: List[List[object]] = []
    for setup in TABLE1_SETUPS:
        row: List[object] = [setup]
        for ch in TABLE1_CHANNELS:
            row.append(measured.get((setup, ch), float("nan")))
            row.append(PAPER_TABLE1[(setup, ch)])
        rows.append(row)
    headers = ["Setup"]
    for ch in TABLE1_CHANNELS:
        headers += [f"{ch}", "(paper)"]
    return format_table(
        headers,
        rows,
        title="Table 1: average delivery times (s), measured vs. paper",
    )


def series_summary(
    gaps_by_sender: Dict[int, List[Tuple[int, float]]],
    names: Optional[Sequence[str]] = None,
) -> str:
    """Summarize a Figure 4/5 run: per-sender completion and gap bands."""
    rows = []
    for sender in sorted(gaps_by_sender):
        pts = gaps_by_sender[sender]
        gaps = [g for _, g in pts]
        label = names[sender] if names else f"P{sender}"
        rows.append(
            [
                label,
                len(pts),
                min(n for n, _ in pts),
                max(n for n, _ in pts),
                sum(gaps) / len(gaps),
            ]
        )
    return format_table(
        ["sender", "deliveries", "first#", "last#", "mean gap (s)"], rows
    )


def band_fractions(
    gaps: Sequence[float], low_band_max: float
) -> Tuple[float, float]:
    """Fraction of deliveries in the ~0 s band vs. the upper band(s).

    Figures 4 and 5 show two bands: messages delivered as the second item
    of a batch arrive ~0 s after the previous one; the first of each batch
    pays the full round latency.
    """
    if not gaps:
        return 0.0, 0.0
    low = sum(1 for g in gaps if g <= low_band_max)
    return low / len(gaps), 1.0 - low / len(gaps)


def ratio(a: float, b: float) -> float:
    """Safe ratio for shape assertions."""
    return a / b if b else float("inf")


# -- run-directory reports -----------------------------------------------------
#
# ``python -m repro.experiments`` exports one ``BENCH_*.json`` per run; the
# ``report`` subcommand re-renders a directory of them.  Loading is
# deliberately tolerant: a missing directory, a half-finished run or a
# corrupt record must degrade to a report that *names* what was skipped,
# never to a traceback — partial run directories are the common case when
# a run was interrupted.

#: figures a run directory may contain, in presentation order
RUN_FIGURES = ("table1", "fig4", "fig5", "fig6")


def load_run_dir(path: str) -> Tuple[Dict[str, Dict[str, Any]], List[str]]:
    """Load every readable ``BENCH_*.json`` under ``path``.

    Returns ``(records, problems)``: records keyed by bench name, and a
    list of human-readable notes for everything that could not be loaded
    (missing directory, malformed files).  Never raises.
    """
    problems: List[str] = []
    if not os.path.isdir(path):
        return {}, [f"run directory {path!r} does not exist"]
    records: Dict[str, Dict[str, Any]] = {}
    found = False
    for entry in sorted(os.listdir(path)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        found = True
        try:
            records.update(obs_export.load_source(os.path.join(path, entry)))
        except ValueError as exc:
            problems.append(f"skipped {entry}: {exc}")
    if not found:
        problems.append(f"run directory {path!r} contains no BENCH_*.json files")
    return records, problems


def _records_for(records: Dict[str, Dict[str, Any]], experiment: str):
    return {
        name: rec for name, rec in records.items()
        if rec.get("experiment") == experiment
    }


def _figure_rows(records: Dict[str, Dict[str, Any]]) -> List[List[object]]:
    rows: List[List[object]] = []
    for name in sorted(records):
        metrics = records[name].get("metrics", {})
        rows.append([
            name,
            int(metrics.get("deliveries", 0)),
            metrics.get("sim_seconds", float("nan")),
            metrics.get("mean_delivery_s", float("nan")),
            metrics.get("messages_sent", float("nan")),
        ])
    return rows


def run_dir_report(path: str) -> str:
    """Render a human-readable report of one exported run directory.

    Figures without records are reported as skipped (with the reason)
    rather than failing the whole report.
    """
    records, problems = load_run_dir(path)
    lines: List[str] = [f"Run report: {path}"]
    for note in problems:
        lines.append(f"  note: {note}")
    lines.append("")

    skipped: List[str] = []
    table1 = _records_for(records, "table1")
    if table1:
        measured = {}
        for rec in table1.values():
            meta = rec.get("meta", {})
            key = (meta.get("setup"), meta.get("channel"))
            measured[key] = rec.get("metrics", {}).get(
                "mean_delivery_s", float("nan")
            )
        expected = len(TABLE1_SETUPS) * len(TABLE1_CHANNELS)
        if len(measured) < expected:
            lines.append(
                f"  note: table1 is partial "
                f"({len(measured)}/{expected} cells present)"
            )
        lines.append(table1_report(measured))
        lines.append("")
    else:
        skipped.append("table1")

    for figure in RUN_FIGURES[1:]:
        figure_records = _records_for(records, figure)
        if not figure_records:
            skipped.append(figure)
            continue
        lines.append(f"{figure}:")
        lines.append(format_table(
            ["bench", "deliveries", "sim (s)", "mean (s)", "messages"],
            _figure_rows(figure_records),
        ))
        lines.append("")

    other = {
        name: rec for name, rec in records.items()
        if rec.get("experiment") not in RUN_FIGURES
    }
    if other:
        lines.append("other benches:")
        lines.append(format_table(
            ["bench", "deliveries", "sim (s)", "mean (s)", "messages"],
            _figure_rows(other),
        ))
        lines.append("")

    if skipped:
        lines.append(
            "skipped figures (no records in this run dir): " + ", ".join(skipped)
        )
    return "\n".join(lines).rstrip() + "\n"


def text_scatter(
    series: Dict[int, List[Tuple[int, float]]],
    names: Optional[Sequence[str]] = None,
    width: int = 72,
    height: int = 16,
    y_max: Optional[float] = None,
) -> str:
    """Render a Figure 4/5-style scatter (delivery # vs gap) as text.

    Each sender gets a marker character; overlapping points show the later
    sender's marker.  This is what lets ``python -m repro.experiments
    fig4`` reproduce the *picture*, bands and all, in a terminal.
    """
    points = [
        (number, gap, sender)
        for sender, pts in series.items()
        for number, gap in pts
    ]
    if not points:
        return "(no data)"
    x_max = max(n for n, _, _ in points)
    y_top = y_max if y_max is not None else max(g for _, g, _ in points)
    y_top = y_top or 1.0
    markers = "ox+*#@%&"
    grid = [[" "] * width for _ in range(height)]
    for number, gap, sender in points:
        col = min(width - 1, int(number / max(1, x_max) * (width - 1)))
        row = min(height - 1, int((1 - min(gap, y_top) / y_top) * (height - 1)))
        grid[row][col] = markers[sender % len(markers)]
    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_top:5.1f}s"
        elif i == height - 1:
            label = "  0.0s"
        else:
            label = "      "
        lines.append(label + " |" + "".join(row))
    lines.append("      +" + "-" * width)
    lines.append(f"       delivery number 0..{x_max}")
    legend = "  ".join(
        f"{markers[s % len(markers)]}={names[s] if names else f'P{s}'}"
        for s in sorted(series)
    )
    lines.append("       " + legend)
    return "\n".join(lines)
