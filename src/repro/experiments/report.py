"""Paper-style reporting of experiment results.

Formats the measured series/rows in the same shape as the paper's Table 1
and Figures 4-6, side by side with the published values, and provides the
shape checks used by the benchmark suite (EXPERIMENTS.md records the
outcomes).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Table 1 of the paper: average delivery times in seconds.
PAPER_TABLE1 = {
    ("LAN", "atomic"): 0.69,
    ("LAN", "secure"): 1.07,
    ("LAN", "reliable"): 0.13,
    ("LAN", "consistent"): 0.11,
    ("Internet", "atomic"): 2.95,
    ("Internet", "secure"): 3.61,
    ("Internet", "reliable"): 0.72,
    ("Internet", "consistent"): 0.83,
    ("LAN+I'net", "atomic"): 2.74,
    ("LAN+I'net", "secure"): 3.79,
    ("LAN+I'net", "reliable"): 0.60,
    ("LAN+I'net", "consistent"): 0.64,
}

TABLE1_CHANNELS = ("atomic", "secure", "reliable", "consistent")
TABLE1_SETUPS = ("LAN", "Internet", "LAN+I'net")


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Monospace table with right-aligned numeric columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def table1_report(measured: Dict[Tuple[str, str], float]) -> str:
    """Render measured Table 1 next to the paper's values."""
    rows: List[List[object]] = []
    for setup in TABLE1_SETUPS:
        row: List[object] = [setup]
        for ch in TABLE1_CHANNELS:
            row.append(measured.get((setup, ch), float("nan")))
            row.append(PAPER_TABLE1[(setup, ch)])
        rows.append(row)
    headers = ["Setup"]
    for ch in TABLE1_CHANNELS:
        headers += [f"{ch}", "(paper)"]
    return format_table(
        headers,
        rows,
        title="Table 1: average delivery times (s), measured vs. paper",
    )


def series_summary(
    gaps_by_sender: Dict[int, List[Tuple[int, float]]],
    names: Optional[Sequence[str]] = None,
) -> str:
    """Summarize a Figure 4/5 run: per-sender completion and gap bands."""
    rows = []
    for sender in sorted(gaps_by_sender):
        pts = gaps_by_sender[sender]
        gaps = [g for _, g in pts]
        label = names[sender] if names else f"P{sender}"
        rows.append(
            [
                label,
                len(pts),
                min(n for n, _ in pts),
                max(n for n, _ in pts),
                sum(gaps) / len(gaps),
            ]
        )
    return format_table(
        ["sender", "deliveries", "first#", "last#", "mean gap (s)"], rows
    )


def band_fractions(
    gaps: Sequence[float], low_band_max: float
) -> Tuple[float, float]:
    """Fraction of deliveries in the ~0 s band vs. the upper band(s).

    Figures 4 and 5 show two bands: messages delivered as the second item
    of a batch arrive ~0 s after the previous one; the first of each batch
    pays the full round latency.
    """
    if not gaps:
        return 0.0, 0.0
    low = sum(1 for g in gaps if g <= low_band_max)
    return low / len(gaps), 1.0 - low / len(gaps)


def ratio(a: float, b: float) -> float:
    """Safe ratio for shape assertions."""
    return a / b if b else float("inf")


def text_scatter(
    series: Dict[int, List[Tuple[int, float]]],
    names: Optional[Sequence[str]] = None,
    width: int = 72,
    height: int = 16,
    y_max: Optional[float] = None,
) -> str:
    """Render a Figure 4/5-style scatter (delivery # vs gap) as text.

    Each sender gets a marker character; overlapping points show the later
    sender's marker.  This is what lets ``python -m repro.experiments
    fig4`` reproduce the *picture*, bands and all, in a terminal.
    """
    points = [
        (number, gap, sender)
        for sender, pts in series.items()
        for number, gap in pts
    ]
    if not points:
        return "(no data)"
    x_max = max(n for n, _, _ in points)
    y_top = y_max if y_max is not None else max(g for _, g, _ in points)
    y_top = y_top or 1.0
    markers = "ox+*#@%&"
    grid = [[" "] * width for _ in range(height)]
    for number, gap, sender in points:
        col = min(width - 1, int(number / max(1, x_max) * (width - 1)))
        row = min(height - 1, int((1 - min(gap, y_top) / y_top) * (height - 1)))
        grid[row][col] = markers[sender % len(markers)]
    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_top:5.1f}s"
        elif i == height - 1:
            label = "  0.0s"
        else:
            label = "      "
        lines.append(label + " |" + "".join(row))
    lines.append("      +" + "-" * width)
    lines.append(f"       delivery number 0..{x_max}")
    legend = "  ".join(
        f"{markers[s % len(markers)]}={names[s] if names else f'P{s}'}"
        for s in sorted(series)
    )
    lines.append("       " + legend)
    return "\n".join(lines)
