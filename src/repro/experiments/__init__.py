"""Experiment harness reproducing the paper's evaluation (Sec. 4)."""

from repro.experiments.setups import (
    HYBRID_SETUP,
    INTERNET_SETUP,
    LAN_SETUP,
    Setup,
)
from repro.experiments.runner import (
    ChannelKind,
    ExperimentResult,
    run_channel_experiment,
)
from repro.experiments import report

__all__ = [
    "Setup",
    "LAN_SETUP",
    "INTERNET_SETUP",
    "HYBRID_SETUP",
    "ChannelKind",
    "ExperimentResult",
    "run_channel_experiment",
    "report",
]
