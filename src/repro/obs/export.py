"""``BENCH_*.json`` — the machine-readable benchmark artifact format.

One *record* captures one experiment run: identifying metadata, the
scalar metrics the CI perf gate compares, the per-phase latency breakdown
(histogram summaries of the ``phase.*`` instruments) and the full counter
registry.  Records are written one file per run (``BENCH_<name>.json``)
and can be combined into a *set* file (``benchmarks/baseline.json`` is
one) for committing a baseline.

All sim-derived fields are deterministic for a pinned seed, which is what
makes the CI diff a real regression gate rather than a noise filter; the
wall-clock fields are informational and never gated (see
:data:`UNGATED_METRICS`).
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, Mapping, Optional

from repro.obs.recorder import Recorder

#: format tags checked by the loader
SCHEMA_RECORD = "repro-bench/1"
SCHEMA_SET = "repro-bench-set/1"

#: metric keys excluded from regression gating (machine-dependent noise)
UNGATED_METRICS = frozenset({"wall_seconds"})

#: environment variable enabling the export pipeline (used by the
#: experiment runner and the benchmark suite alike)
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

_NAME_RE = re.compile(r"[^A-Za-z0-9._+-]+")


def bench_dir_from_env() -> Optional[str]:
    """The export directory configured via ``REPRO_BENCH_DIR``, if any."""
    value = os.environ.get(BENCH_DIR_ENV, "").strip()
    return value or None


def safe_name(raw: str) -> str:
    """A filesystem-safe benchmark name."""
    return _NAME_RE.sub("-", raw).strip("-")


def make_record(
    name: str,
    *,
    experiment: str = "adhoc",
    meta: Optional[Mapping[str, Any]] = None,
    metrics: Optional[Mapping[str, float]] = None,
    recorder: Optional[Recorder] = None,
    outcome: str = "ok",
) -> Dict[str, Any]:
    """Assemble one benchmark record from a run's outputs."""
    snapshot = recorder.snapshot() if recorder is not None else Recorder().snapshot()
    histograms = snapshot.get("histograms", {})
    phases = {
        key[len("phase."):]: summary
        for key, summary in histograms.items()
        if key.startswith("phase.")
    }
    record = {
        "schema": SCHEMA_RECORD,
        "name": safe_name(name),
        "experiment": experiment,
        "outcome": outcome,
        "meta": dict(meta or {}),
        "metrics": {k: float(v) for k, v in (metrics or {}).items()},
        "phases": phases,
        "histograms": {
            key: summary for key, summary in histograms.items()
            if not key.startswith("phase.")
        },
        "counters": snapshot.get("counters", {}),
        "gauges": snapshot.get("gauges", {}),
    }
    validate_record(record)
    return record


def validate_record(record: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``record`` is a well-formed bench record."""
    if not isinstance(record, Mapping):
        raise ValueError("bench record must be a JSON object")
    if record.get("schema") != SCHEMA_RECORD:
        raise ValueError(f"unknown bench schema {record.get('schema')!r}")
    for key, kind in (("name", str), ("experiment", str), ("outcome", str),
                      ("meta", Mapping), ("metrics", Mapping),
                      ("phases", Mapping), ("counters", Mapping)):
        if not isinstance(record.get(key), kind):
            raise ValueError(f"bench record field {key!r} missing or mistyped")
    if not record["name"]:
        raise ValueError("bench record has an empty name")
    for metric, value in record["metrics"].items():
        if not isinstance(value, (int, float)):
            raise ValueError(f"metric {metric!r} is not numeric: {value!r}")
    for phase, summary in record["phases"].items():
        if not isinstance(summary, Mapping) or "mean" not in summary:
            raise ValueError(f"phase {phase!r} lacks a histogram summary")


def write_record(directory: str, record: Mapping[str, Any]) -> str:
    """Write ``record`` as ``BENCH_<name>.json`` under ``directory``."""
    validate_record(record)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{record['name']}.json")
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def combine(records: Mapping[str, Mapping[str, Any]]) -> Dict[str, Any]:
    """Bundle records (name -> record) into one set document."""
    for record in records.values():
        validate_record(record)
    return {"schema": SCHEMA_SET, "benches": {k: dict(v) for k, v in sorted(records.items())}}


def load_source(path: str) -> Dict[str, Dict[str, Any]]:
    """Load bench records from ``path`` as a name -> record mapping.

    ``path`` may be a single record file, a combined set file, or a
    directory containing ``BENCH_*.json`` files.  Malformed entries raise
    ``ValueError`` with the offending file named.
    """
    if os.path.isdir(path):
        out: Dict[str, Dict[str, Any]] = {}
        for entry in sorted(os.listdir(path)):
            if entry.startswith("BENCH_") and entry.endswith(".json"):
                out.update(load_source(os.path.join(path, entry)))
        return out
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: not a readable bench JSON file ({exc})") from exc
    if isinstance(doc, dict) and doc.get("schema") == SCHEMA_SET:
        benches = doc.get("benches")
        if not isinstance(benches, dict):
            raise ValueError(f"{path}: bench set without a 'benches' mapping")
        for name, record in benches.items():
            try:
                validate_record(record)
            except ValueError as exc:
                raise ValueError(f"{path}: bench {name!r}: {exc}") from exc
        return {name: record for name, record in benches.items()}
    try:
        validate_record(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc
    return {doc["name"]: doc}
