"""repro.obs — lightweight observability for the SINTRA reproduction.

Span-style tracing (simulated-time aware), named counters and latency
histograms behind a pluggable :class:`Recorder`, plus the
``BENCH_*.json`` export pipeline and the ``python -m repro.obs.report``
CLI that summarizes and diffs benchmark artifacts (the CI perf gate).

The default recorder is :data:`NULL` — a no-op whose cost at every
instrumented call site is a single ``obs.enabled`` attribute check.  Pass
a :class:`MemoryRecorder` to a runtime (``SimRuntime(...,
recorder=MemoryRecorder())`` or ``TcpNode(..., recorder=...)``) to turn
measurement on.  See docs/OBSERVABILITY.md for the naming conventions.
"""

from repro.obs.export import (
    BENCH_DIR_ENV,
    bench_dir_from_env,
    combine,
    load_source,
    make_record,
    safe_name,
    validate_record,
    write_record,
)
from repro.obs.recorder import (
    NULL,
    Histogram,
    MemoryRecorder,
    NullRecorder,
    Recorder,
    Span,
)

__all__ = [
    "BENCH_DIR_ENV",
    "Histogram",
    "MemoryRecorder",
    "NULL",
    "NullRecorder",
    "Recorder",
    "Span",
    "bench_dir_from_env",
    "combine",
    "load_source",
    "make_record",
    "safe_name",
    "validate_record",
    "write_record",
]
