"""Recorders: the measurement substrate of :mod:`repro.obs`.

Design constraints (see docs/OBSERVABILITY.md):

* **Zero-dependency and near-zero disabled cost.**  The default recorder
  is a :class:`NullRecorder` whose methods are no-ops and whose
  :attr:`~Recorder.enabled` flag is ``False``; every hot-path call site
  guards with ``if obs.enabled:`` so a disabled run performs exactly one
  attribute load per potential measurement — nothing is allocated,
  formatted or stored.

* **Clock-agnostic.**  A recorder measures against whatever clock it is
  bound to: the discrete-event simulator binds its virtual clock (so
  spans and phase durations are *simulated* seconds, deterministic and
  seed-reproducible), while the asyncio/TCP runtime binds the event
  loop's wall clock.  Until a runtime binds a clock,
  :func:`time.perf_counter` is used.

* **Three instrument kinds.**
  - *counters* — monotonically accumulated ``float`` values
    (``count(name, delta)``), plus *gauges* (``set_gauge``) for
    last-write-wins values such as the TCP link statistics;
  - *histograms* — latency/size distributions with percentile summaries
    (``observe(name, value)``);
  - *spans and phases* — time intervals.  ``span(name)`` is a context
    manager for lexically scoped intervals (nesting tracked); protocol
    code, which is event-driven and has no lexical scope across
    messages, uses the *phase* API instead: ``phase(scope, name)``
    declares that ``scope`` (conventionally ``(node_id, pid)``) has just
    entered ``name``, closing the previous phase of that scope into the
    histogram ``phase.<previous name>``.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple


class Histogram:
    """A latency/size distribution with percentile summaries.

    Values are kept in full (experiment runs are small); ``summary()``
    reduces them to the fields exported in ``BENCH_*.json``.
    """

    __slots__ = ("values", "total")

    def __init__(self) -> None:
        self.values: List[float] = []
        self.total = 0.0

    def add(self, value: float) -> None:
        self.values.append(value)
        self.total += value

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not self.values:
            return 0.0
        data = sorted(self.values)
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return data[lo]
        frac = rank - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def summary(self) -> Dict[str, float]:
        if not self.values:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": len(self.values),
            "total": self.total,
            "mean": self.mean,
            "min": min(self.values),
            "max": max(self.values),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class Span:
    """One recorded interval; ``end`` is ``None`` while still open."""

    __slots__ = ("name", "start", "end", "depth", "parent", "attrs")

    def __init__(self, name: str, start: float, depth: int,
                 parent: Optional[int], attrs: Dict[str, Any]):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.depth = depth
        self.parent = parent  # index of the enclosing span, or None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, start={self.start:.6f}, "
                f"end={self.end}, depth={self.depth})")


class _NullSpan:
    """Shared do-nothing context manager returned by the null recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Recorder:
    """No-op base recorder: the API surface, with every method a no-op.

    Hot paths guard on :attr:`enabled`, so with the default recorder the
    whole observability layer costs one attribute check per site.
    """

    #: call sites skip measurement work entirely when this is False
    enabled: bool = False
    #: time source; runtimes bind their own via :meth:`bind_clock`
    clock: Optional[Callable[[], float]] = None

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Bind a time source if none is bound yet (first runtime wins)."""
        if self.clock is None:
            self.clock = clock

    def now(self) -> float:
        return (self.clock or time.perf_counter)()

    # -- instruments (all no-ops here) -----------------------------------------

    def count(self, name: str, delta: float = 1.0) -> None:
        """Accumulate ``delta`` onto counter ``name``."""

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""

    def observe(self, name: str, value: float) -> None:
        """Add one sample to histogram ``name``."""

    def span(self, name: str, **attrs: Any) -> Any:
        """Context manager measuring a lexically scoped interval."""
        return _NULL_SPAN

    def phase(self, scope: Hashable, name: str) -> None:
        """Event-driven phase transition for ``scope`` (see module doc)."""

    def phase_end(self, scope: Hashable) -> None:
        """Close ``scope``'s current phase without starting a new one."""

    # -- exporting -------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Serializable view of everything recorded so far."""
        return {"counters": {}, "gauges": {}, "histograms": {}, "spans": 0}


class NullRecorder(Recorder):
    """Alias of the no-op base, for explicitness at call sites."""


#: The process-wide default recorder.  Runtimes fall back to this when no
#: recorder is passed; it records nothing.
NULL = NullRecorder()


class _SpanHandle:
    """Context manager driving one :class:`Span` on a memory recorder."""

    __slots__ = ("_rec", "_index")

    def __init__(self, rec: "MemoryRecorder", index: int):
        self._rec = rec
        self._index = index

    def __enter__(self) -> Span:
        return self._rec.spans[self._index]

    def __exit__(self, *exc: object) -> None:
        self._rec._close_span(self._index)


class MemoryRecorder(Recorder):
    """Collects counters, gauges, histograms, spans and phases in memory.

    One recorder is shared by all parties of a runtime, which is why the
    phase API is keyed by an explicit ``scope`` (conventionally
    ``(node_id, pid)``): concurrent protocol instances never clobber each
    other's phase timing.
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock = clock
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.spans: List[Span] = []
        self._open: List[int] = []  # stack of indices into spans
        self._phases: Dict[Hashable, Tuple[str, float]] = {}

    # -- counters / gauges / histograms ------------------------------------------

    def count(self, name: str, delta: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + delta

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.add(value)

    def histogram(self, name: str) -> Histogram:
        """The named histogram (created empty on first access)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    # -- spans ------------------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        parent = self._open[-1] if self._open else None
        span = Span(name, self.now(), depth=len(self._open), parent=parent,
                    attrs=attrs)
        index = len(self.spans)
        self.spans.append(span)
        self._open.append(index)
        return _SpanHandle(self, index)

    def _close_span(self, index: int) -> None:
        span = self.spans[index]
        if span.end is None:
            span.end = self.now()
            self.observe(f"span.{span.name}", span.duration)
        if self._open and self._open[-1] == index:
            self._open.pop()

    # -- phases ---------------------------------------------------------------------------

    def phase(self, scope: Hashable, name: str) -> None:
        now = self.now()
        previous = self._phases.get(scope)
        if previous is not None:
            prev_name, started = previous
            self.observe(f"phase.{prev_name}", now - started)
        self._phases[scope] = (name, now)

    def phase_end(self, scope: Hashable) -> None:
        previous = self._phases.pop(scope, None)
        if previous is not None:
            prev_name, started = previous
            self.observe(f"phase.{prev_name}", self.now() - started)

    def current_phase(self, scope: Hashable) -> Optional[str]:
        entry = self._phases.get(scope)
        return entry[0] if entry is not None else None

    # -- exporting ------------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.summary()
                for name, hist in sorted(self.histograms.items())
            },
            "spans": len(self.spans),
        }
