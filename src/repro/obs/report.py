"""Render and diff ``BENCH_*.json`` artifacts — the CI perf gate.

Usage::

    python -m repro.obs.report BENCH_a.json [BENCH_b.json ...]
        human-readable summary of each record (files, dirs or sets)

    python -m repro.obs.report --diff BASELINE CURRENT --threshold 20%
        compare two sources (file, dir or set each); exit 1 if any gated
        metric of any common bench regressed by more than the threshold

    python -m repro.obs.report --combine SRC [SRC ...] -o baseline.json
        bundle records into one committed baseline set file

Gated metrics are the record's ``metrics`` map minus the machine-dependent
:data:`repro.obs.export.UNGATED_METRICS` (wall-clock time); everything
gated is simulator-derived and deterministic under a pinned seed, so a
trip of this gate is a real behavioral regression, not CI noise.  Lower
is better for every gated metric.  Counters can be added to the gate with
``--gate-counters``; per-phase means are always *reported* in the diff
but only gated with ``--gate-phases``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs import export

#: ignore absolute drifts below this (seconds / ops) even when the
#: relative threshold trips — guards against 1e-9-scale float jitter
ABS_EPSILON = 1e-9


def parse_threshold(raw: str) -> float:
    """``"20%"`` -> 0.20, ``"0.2"`` -> 0.2."""
    text = raw.strip()
    try:
        if text.endswith("%"):
            return float(text[:-1]) / 100.0
        return float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad threshold {raw!r}") from None


def _fmt(value: float) -> str:
    if abs(value) >= 1000 or value == int(value):
        return f"{value:,.0f}"
    return f"{value:.4g}"


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
             "  ".join("-" * w for w in widths)]
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def summarize(record: Mapping[str, Any]) -> str:
    """One record as a human-readable block."""
    lines = [f"bench {record['name']}  [{record['experiment']}]  "
             f"outcome={record['outcome']}"]
    meta = record.get("meta", {})
    if meta:
        lines.append("  " + "  ".join(f"{k}={v}" for k, v in sorted(meta.items())))
    metrics = record.get("metrics", {})
    if metrics:
        rows = [[k, _fmt(float(v))] for k, v in sorted(metrics.items())]
        lines.append(_indent(_table(["metric", "value"], rows)))
    phases = record.get("phases", {})
    if phases:
        rows = [
            [name, _fmt(s.get("count", 0)), f"{s.get('mean', 0):.4f}",
             f"{s.get('p50', 0):.4f}", f"{s.get('p90', 0):.4f}",
             f"{s.get('p99', 0):.4f}", f"{s.get('total', 0):.3f}"]
            for name, s in sorted(phases.items())
        ]
        lines.append(_indent(_table(
            ["phase", "count", "mean s", "p50", "p90", "p99", "total s"], rows)))
    counters = record.get("counters", {})
    if counters:
        rows = [[k, _fmt(float(v))] for k, v in sorted(counters.items())]
        lines.append(_indent(_table(["counter", "value"], rows)))
    return "\n".join(lines)


def _indent(block: str, pad: str = "  ") -> str:
    return "\n".join(pad + line for line in block.splitlines())


class Regression:
    """One gated value that got worse past the threshold."""

    def __init__(self, bench: str, metric: str, base: float, cur: float):
        self.bench = bench
        self.metric = metric
        self.base = base
        self.cur = cur

    @property
    def change(self) -> float:
        return (self.cur - self.base) / self.base if self.base else float("inf")


def _gated_values(
    record: Mapping[str, Any], gate_counters: bool, gate_phases: bool
) -> Dict[str, float]:
    values: Dict[str, float] = {
        f"metrics.{k}": float(v)
        for k, v in record.get("metrics", {}).items()
        if k not in export.UNGATED_METRICS
    }
    if gate_counters:
        for k, v in record.get("counters", {}).items():
            values[f"counters.{k}"] = float(v)
    if gate_phases:
        for k, s in record.get("phases", {}).items():
            values[f"phases.{k}.mean"] = float(s.get("mean", 0.0))
    return values


def diff(
    baseline: Mapping[str, Mapping[str, Any]],
    current: Mapping[str, Mapping[str, Any]],
    threshold: float,
    gate_counters: bool = False,
    gate_phases: bool = False,
    out=None,
) -> Tuple[List[Regression], List[str]]:
    """Compare two record sets; returns (regressions, skipped names)."""
    out = out if out is not None else sys.stdout
    skipped = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))
    common = sorted(set(baseline) & set(current))
    regressions: List[Regression] = []
    for name in common:
        base_vals = _gated_values(baseline[name], gate_counters, gate_phases)
        cur_vals = _gated_values(current[name], gate_counters, gate_phases)
        rows = []
        for metric in sorted(base_vals):
            base = base_vals[metric]
            cur = cur_vals.get(metric)
            if cur is None:
                rows.append([metric, _fmt(base), "(missing)", "-", "skip"])
                continue
            delta = cur - base
            rel = delta / base if base else (float("inf") if delta > 0 else 0.0)
            worse = delta > max(abs(base) * threshold, ABS_EPSILON)
            verdict = "REGRESSION" if worse else ("ok" if delta <= 0 else "ok (within)")
            rows.append([metric, _fmt(base), _fmt(cur),
                         f"{rel:+.1%}" if base else "n/a", verdict])
            if worse:
                regressions.append(Regression(name, metric, base, cur))
        print(f"\n== {name} ==", file=out)
        print(_table(["metric", "baseline", "current", "change", "verdict"], rows),
              file=out)
        cur_phases = current[name].get("phases", {})
        if cur_phases and not gate_phases:
            prow = [[p, f"{s.get('mean', 0):.4f}",
                     f"{current[name]['phases'].get(p, {}).get('mean', 0):.4f}"]
                    for p, s in sorted(baseline[name].get("phases", {}).items())]
            if prow:
                print(_indent(_table(["phase (informational)", "base mean s",
                                      "cur mean s"], prow)), file=out)
    for name in skipped:
        print(f"\nskipped: {name} (present in baseline, missing from current run)",
              file=out)
    for name in added:
        print(f"\nnew bench (not in baseline, not gated): {name}", file=out)
    return regressions, skipped


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize, combine, or diff BENCH_*.json artifacts.",
    )
    parser.add_argument("sources", nargs="*",
                        help="record files, set files, or directories")
    parser.add_argument("--diff", nargs=2, metavar=("BASELINE", "CURRENT"),
                        help="compare two sources and gate on regressions")
    parser.add_argument("--threshold", type=parse_threshold, default=0.20,
                        help="allowed relative regression, e.g. 20%% (default)")
    parser.add_argument("--gate-counters", action="store_true",
                        help="also gate every counter, not just metrics")
    parser.add_argument("--gate-phases", action="store_true",
                        help="also gate per-phase mean latencies")
    parser.add_argument("--combine", action="store_true",
                        help="bundle the sources into one set file (see -o)")
    parser.add_argument("-o", "--output", default=None,
                        help="output path for --combine")
    args = parser.parse_args(argv)

    try:
        if args.diff:
            baseline = export.load_source(args.diff[0])
            current = export.load_source(args.diff[1])
            if not baseline:
                print(f"error: no bench records in {args.diff[0]}", file=sys.stderr)
                return 2
            regressions, _ = diff(
                baseline, current, args.threshold,
                gate_counters=args.gate_counters, gate_phases=args.gate_phases,
            )
            if regressions:
                print(f"\nFAIL: {len(regressions)} regression(s) beyond "
                      f"{args.threshold:.0%}:", file=sys.stderr)
                for reg in regressions:
                    print(f"  {reg.bench}: {reg.metric} "
                          f"{_fmt(reg.base)} -> {_fmt(reg.cur)} ({reg.change:+.1%})",
                          file=sys.stderr)
                return 1
            print(f"\nOK: no gated metric regressed beyond {args.threshold:.0%}")
            return 0

        if not args.sources:
            parser.error("give at least one source, or --diff BASELINE CURRENT")
        records: Dict[str, Dict[str, Any]] = {}
        for source in args.sources:
            records.update(export.load_source(source))
        if not records:
            print("error: no bench records found", file=sys.stderr)
            return 2

        if args.combine:
            if not args.output:
                parser.error("--combine requires -o OUTPUT")
            doc = export.combine(records)
            import json

            with open(args.output, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {len(records)} bench record(s) to {args.output}")
            return 0

        for name in sorted(records):
            print(summarize(records[name]))
            print()
        return 0
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
