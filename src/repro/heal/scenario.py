"""The closed-loop heal case: intrusion → detection → eviction → re-attack.

One seeded, deterministic end-to-end scenario composing the whole stack:

1. an ``n``-replica reconfigurable group serves ordered traffic under
   the simulator; one seeded *victim* replica runs a real intrusion
   strategy from :mod:`repro.adversary.strategies` (``doublevote``,
   ``badshare``, ``silence``, ...) behind an
   :class:`~repro.adversary.context.AdversarialContext`;
2. the :class:`~repro.heal.orchestrator.HealOrchestrator` — wired to a
   report-mode watchdog, the equivocation/silence router tap, and the
   router error streams — must *autonomously* detect the victim, fence
   it, drain-and-replace it with a spare via epoch reconfiguration and
   certified state transfer (no operator call anywhere in the run);
3. post-heal, the honest group and the onboarded successor must agree
   byte-for-byte on delivered state, and a renewed attack using the
   evicted replica's *pre-refresh* shares must be rejected: the epoch
   rotation made them cryptographically stale (checked directly against
   the new epoch's verifier).

Failures print a one-line ``HEAL-REPRO:`` replay command, mirroring the
adversary harness's ADV-REPRO convention.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.adversary.context import AdversarialContext
from repro.app.replication import StateMachine
from repro.adversary.strategies import make_strategy
from repro.adversary.watchdog import LivenessWatchdog
from repro.common import rng as rng_mod
from repro.common.errors import ReproError
from repro.core.party import make_parties
from repro.crypto import params as params_mod
from repro.crypto.dealer import GroupConfig, fast_group
from repro.heal.evidence import EquivocationMonitor, SuspicionScorer
from repro.heal.orchestrator import HealOrchestrator, OrchestratorConfig
from repro.heal.planner import PlannerConfig, RecoveryPlanner
from repro.membership.epoch import EpochKeychain
from repro.membership.service import ReconfigurableService
from repro.net.latency import lan_latency
from repro.net.runtime import SimRuntime
from repro.obs.recorder import Recorder


class CounterMachine(StateMachine):
    """The scenario's replicated state machine: a counter over
    ``add:<k>`` / ``sub:<k>`` commands (deterministic, snapshotable)."""

    def __init__(self) -> None:
        self.value = 0
        self.applied = 0

    def apply(self, command: bytes) -> bytes:
        op, _, arg = command.partition(b":")
        delta = int(arg or b"0")
        if op == b"add":
            self.value += delta
        elif op == b"sub":
            self.value -= delta
        self.applied += 1
        return b"%d" % self.value

    def snapshot(self) -> bytes:
        return b"%d:%d" % (self.value, self.applied)

    def restore(self, blob: bytes) -> None:
        value, _, applied = blob.partition(b":")
        self.value = int(value)
        self.applied = int(applied or b"0")


@dataclass
class HealResult:
    """Outcome of one closed-loop heal case; everything needed to replay."""

    ok: bool
    strategy: str
    n: int
    t: int
    case_seed: int
    victim: int
    #: the orchestrator detected the victim (its score crossed threshold)
    detected: bool = False
    #: the victim's slot was drained and a successor onboarded
    replaced: bool = False
    #: all live replicas ended on one identical state digest
    digests_agree: bool = False
    #: the victim's pre-refresh share was rejected by the new epoch
    stale_share_rejected: bool = False
    final_epoch: int = 0
    final_value: Optional[int] = None
    heals: List[Dict[str, Any]] = field(default_factory=list)
    suspicion: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None

    def replay_command(self) -> str:
        return (
            f"PYTHONPATH=src python -m repro.heal"
            f" --strategy {self.strategy} --n {self.n} --t {self.t}"
            f" --case {hex(self.case_seed)} --victim {self.victim}"
        )

    def repro_line(self) -> str:
        return (
            f"HEAL-REPRO: strategy={self.strategy} n={self.n} t={self.t}"
            f" case={hex(self.case_seed)} victim={self.victim}"
            f" detected={self.detected} replaced={self.replaced}"
            f" digests_agree={self.digests_agree}"
            f" stale_share_rejected={self.stale_share_rejected}"
            f" error={self.error!r}"
            f"\n  replay: {self.replay_command()}"
        )


_GROUP_CACHE: Dict[Any, GroupConfig] = {}


def heal_group(n: int, t: int) -> GroupConfig:
    """Deal (or reuse) a toy group that keeps the raw key material the
    :class:`~repro.membership.epoch.EpochKeychain` derives epochs from."""
    key = (n, t)
    if key not in _GROUP_CACHE:
        _GROUP_CACHE[key] = fast_group(
            n, t, params_mod.SecurityParams.toy(), sig_mode="multi", seed=1
        )
    return _GROUP_CACHE[key]


def stale_share_rejected(
    keychain: EpochKeychain, roster: Any, epoch: int, victim: int
) -> bool:
    """Prove the evicted replica's epoch-0 coin share is useless now.

    The victim releases a share from its *dealt* (pre-refresh) material;
    it must verify under the epoch-0 coin and fail under the current
    epoch's — the mobile-adversary countermeasure, checked directly at
    the crypto layer (a renewed attack is rejected share by share).
    """
    name = b"heal-stale-probe"
    coin0 = keychain.group.parties[victim].coin
    raw = keychain.group.raw
    assert raw is not None
    share0 = int(raw["coin"]["shares"][victim])
    release = coin0.holder(victim + 1, share0).release(name)
    fresh = keychain.material(epoch, roster).coin
    return bool(coin0.verify_share(name, release)) and not bool(
        fresh.verify_share(name, release)
    )


def run_heal_case(
    strategy_name: str,
    case_seed: int,
    workdir: str,
    *,
    n: int = 4,
    t: int = 1,
    victim: Optional[int] = None,
    group: Optional[GroupConfig] = None,
    recorder: Optional[Recorder] = None,
    deadline: float = 20.0,
    time_limit: float = 2000.0,
    traffic: int = 12,
    planner_config: Optional[PlannerConfig] = None,
    orchestrator_config: Optional[OrchestratorConfig] = None,
) -> HealResult:
    """Execute one closed-loop heal case; deterministic in all arguments.

    ``workdir`` hosts the replicas' durable state (WAL, checkpoints,
    epoch files) — a fresh temporary directory per case.
    """
    group = group or heal_group(n, t)
    if victim is None:
        victim = rng_mod.derive(case_seed, "victim").randrange(n)
    result = HealResult(
        ok=False,
        strategy=strategy_name,
        n=n,
        t=t,
        case_seed=case_seed,
        victim=victim,
    )
    runtime = SimRuntime(
        group,
        latency=lan_latency(),
        seed=("heal", case_seed),
        recorder=recorder,
    )
    obs = runtime.obs

    # Infect the victim before any protocol object exists, exactly as the
    # adversary harness does: its whole stack runs behind the strategy.
    strategy = make_strategy(
        strategy_name, rng_mod.derive(case_seed, "strategy", victim)
    )
    strategy.adversaries = frozenset({victim})
    runtime.contexts[victim] = AdversarialContext(
        runtime.contexts[victim], strategy
    )
    runtime.routers[victim].observers.append(strategy.observe)

    parties = make_parties(runtime)
    keychain = EpochKeychain(group)

    def build(slot: int, suffix: str, min_epoch: int = 0) -> ReconfigurableService:
        directory = f"{workdir}/replica{slot}{suffix}"
        return ReconfigurableService(
            parties[slot],
            "heal",
            CounterMachine(),
            directory,
            keychain,
            min_epoch=min_epoch,
            checkpoint_interval=2,
            fsync="never",
        )

    services: Dict[int, Optional[ReconfigurableService]] = {
        i: build(i, "") for i in range(n)
    }
    for svc in services.values():
        assert svc is not None
        svc.start()

    watchdog = LivenessWatchdog(
        deadline=deadline, recorder=obs, raise_on_stall=False
    )
    scorer = SuspicionScorer(half_life=60.0, recorder=obs)
    planner = RecoveryPlanner(
        planner_config
        or PlannerConfig(
            replace_threshold=5.0,
            restart_threshold=10.0,
            refresh_interval=600.0,
        ),
        recorder=obs,
    )
    spawned = 0

    def factory(
        slot: int, member: str, min_epoch: int, kind: str
    ) -> ReconfigurableService:
        nonlocal spawned
        spawned += 1
        ctx = runtime.contexts[slot]
        if kind == "replace" and isinstance(ctx, AdversarialContext):
            # a replacement is a *reimaged* machine: the intrusion does
            # not survive into the successor process.  A mere restart
            # keeps the compromised image — the strategy rides along, and
            # the planner's escalation path is what evicts it for good.
            # (The strategy's passive router tap keeps watching; its
            # hoarded shares are what the stale-share check proves dead.)
            runtime.contexts[slot] = ctx.inner
            parties[slot] = make_parties(runtime)[slot]
        return build(slot, f"-{member}-{spawned}", min_epoch=min_epoch)

    orchestrator = HealOrchestrator(
        runtime,
        services,
        scorer=scorer,
        planner=planner,
        watchdog=watchdog,
        spares=[f"spare-{i}" for i in range(t)],
        service_factory=factory,
        config=orchestrator_config
        or OrchestratorConfig(
            tick_interval=5.0,
            commit_timeout=200.0,
            onboard_timeout=600.0,
            retry_base=2.0,
            retry_cap=30.0,
            silence_after=4.0 * deadline,
        ),
        recorder=obs,
    )
    # the monitor's sink is the orchestrator, so it is built second and
    # slotted in before attach() installs the router taps
    monitor = EquivocationMonitor(
        orchestrator.ingest, lambda: runtime.now, recorder=obs
    )
    orchestrator.monitor = monitor
    orchestrator.attach()
    orchestrator.watch_services()
    watchdog.attach(runtime)
    watchdog.arm()
    orchestrator.start()

    def live_honest() -> List[ReconfigurableService]:
        return [
            svc
            for slot, svc in services.items()
            if svc is not None and slot != victim and slot not in orchestrator._fenced
        ]

    def pump(upto: float) -> None:
        runtime.run(until=upto)

    try:
        # Phase 1: traffic while the intrusion runs, until the
        # orchestrator completes a replacement of the victim's slot (or
        # the time budget expires).  The first ``traffic`` submissions
        # carry values; afterwards no-op heartbeats keep the channel
        # busy — silence detection needs a chatty group to contrast the
        # quiet replica against.  A submission bouncing off a barrier
        # window is simply retried on the next pulse.
        value = 0
        sent = 0
        pulses = 0
        clock = runtime.now
        while clock < time_limit:
            if any(
                h["outcome"] == "replaced" and h["slot"] == victim
                for h in orchestrator.heals
            ):
                break
            clock += 8.0
            pump(clock)
            targets = live_honest()
            if not targets:
                break
            pulses += 1
            command = (
                b"add:%d" % (sent + 1) if sent < traffic else b"add:0"
            )
            try:
                targets[pulses % len(targets)].submit(command)
            except ReproError:
                continue  # barrier window / backlog: retry next pulse
            if sent < traffic:
                value += sent + 1
                sent += 1

        result.detected = scorer.score(victim, runtime.now) > 0 or any(
            h["slot"] == victim for h in orchestrator.heals
        )
        result.replaced = any(
            h["outcome"] == "replaced" and h["slot"] == victim
            for h in orchestrator.heals
        )

        # Phase 3: post-heal traffic — the healed group (successor
        # included) must converge on identical digests.
        post = live_honest() + (
            [services[victim]]
            if result.replaced and services[victim] is not None
            else []
        )
        post = [s for s in post if s is not None]
        tail_value = 0
        for i in range(3):
            sent_ok = False
            while clock < time_limit and not sent_ok:
                try:
                    post[i % len(post)].submit(b"add:%d" % (100 + i))
                    sent_ok = True
                except ReproError:
                    clock += 8.0
                    pump(clock)
            if sent_ok:
                tail_value += 100 + i
        target_seq = None
        while clock < time_limit:
            clock += 20.0
            pump(clock)
            seqs = {s.applied_seq for s in post}
            if len(seqs) == 1:
                if target_seq is None:
                    target_seq = seqs.pop()
                    continue
                if seqs == {target_seq}:
                    break
                target_seq = None

        orchestrator.stop()
        watchdog.disarm()
        runtime.run(until=runtime.now + 5 * deadline)

        digests = {s.last_state_digest() for s in post}
        result.digests_agree = len(digests) == 1 and len(post) >= n - t
        values = {getattr(s.state, "value", None) for s in post}
        result.final_value = values.pop() if len(values) == 1 else None
        epochs = {s.membership_epoch for s in post}
        result.final_epoch = max(epochs) if epochs else 0

        # Phase 4: the renewed attack.  The evicted replica still holds
        # its pre-refresh shares; they must be stale under the new epoch.
        anchor = post[0] if post else None
        if anchor is not None and result.final_epoch > 0:
            result.stale_share_rejected = stale_share_rejected(
                keychain, anchor.roster, result.final_epoch, victim
            )
        result.heals = list(orchestrator.heals)
        result.suspicion = scorer.dump(runtime.now)
        result.ok = (
            result.detected
            and result.replaced
            and result.digests_agree
            and result.stale_share_rejected
        )
        if not result.ok and result.error is None:
            missing = [
                name
                for name, got in (
                    ("detected", result.detected),
                    ("replaced", result.replaced),
                    ("digests_agree", result.digests_agree),
                    ("stale_share_rejected", result.stale_share_rejected),
                )
                if not got
            ]
            result.error = f"acceptance failed: {', '.join(missing)}"
    except ReproError as exc:
        result.error = f"{type(exc).__name__}: {exc}"
    return result


def case_digest(result: HealResult) -> str:
    """A short stable fingerprint of a case outcome (campaign reporting)."""
    blob = (
        f"{result.strategy}:{result.case_seed}:{result.victim}:"
        f"{result.replaced}:{result.final_epoch}:{result.final_value}"
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


__all__ = [
    "CounterMachine",
    "HealResult",
    "heal_group",
    "run_heal_case",
    "stale_share_rejected",
    "case_digest",
]
