"""The intrusion-recovery orchestrator: detection wired to repair.

:class:`HealOrchestrator` is the control loop that closes SINTRA's
tolerance story: the group does not just *survive* an intrusion, it
autonomously evicts the intruder and restores full redundancy.  On a
recurring tick (runtime clock, so the loop is deterministic under the
simulator) it:

1. ingests evidence — failure-detector transitions and stall reports
   from a report-mode :class:`~repro.adversary.watchdog.LivenessWatchdog`,
   equivocation and silence from the
   :class:`~repro.heal.evidence.EquivocationMonitor` router tap, and
   contained protocol errors (rejected shares/certificates) scanned
   from every honest router;
2. asks the :class:`~repro.heal.planner.RecoveryPlanner` for at most
   one action against the current :class:`~repro.heal.planner.GroupView`;
3. executes it as a small state machine::

       pending -> submitted -> committed -> onboarding -> done
                      |             |            |
                      +-- retry/abort            +-- rolled-back

   Submission goes through a healthy executor replica's programmatic
   membership API (:meth:`~repro.membership.service.ReconfigurableService.
   drain_and_replace` et al.) with exponential-backoff retries that
   rotate executors; the epoch-commit and onboarding steps each carry a
   timeout whose expiry *rolls the execution back* without wedging the
   channel — the group keeps running on ``>= n - t`` replicas and the
   planner may try again after a cooldown.

Fencing: the victim of a replace/quarantine/restart is shut down
*before* the membership change is submitted.  In the paper's model the
trusted local entity of each server enforces epoch key erasure; here the
orchestrator plays the operator that powers the machine off — the
evicted process never observes the new epoch, and its retained shares
are invalidated by the rotation at the barrier regardless.

Everything the orchestrator does is visible as ``heal.*`` counters and
phases in exported BENCH records (docs/SELFHEALING.md).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from repro.adversary.watchdog import LivenessWatchdog, ProgressSentinel, sentinel_for
from repro.common.errors import (
    ChannelCongested,
    ConfigError,
    ReconfigInProgress,
    ReproError,
    ServiceNotOpen,
)
from repro.heal.evidence import (
    EV_BAD_CERT,
    EV_BAD_SHARE,
    EV_FD_DOWN,
    EV_FD_SUSPECT,
    EV_SILENCE,
    EV_STALL,
    EquivocationMonitor,
    Evidence,
    SuspicionScorer,
)
from repro.heal.planner import (
    Action,
    DrainAndReplace,
    GroupView,
    Quarantine,
    RecoveryPlanner,
    RefreshShares,
    RestartReplica,
)
from repro.membership.service import ReconfigurableService
from repro.net.failure_detector import DOWN, SUSPECT
from repro.obs.recorder import NULL as NULL_RECORDER
from repro.obs.recorder import Recorder

#: execution states
PENDING = "pending"
SUBMITTED = "submitted"
COMMITTED = "committed"
ONBOARDING = "onboarding"
DONE = "done"
ROLLED_BACK = "rolled-back"

#: a factory building the replacement service process for ``slot`` under
#: name ``member`` with the given epoch floor; the orchestrator calls
#: ``recover()`` on the result.  ``kind`` is ``"replace"`` (a fresh,
#: reimaged machine) or ``"restart"`` (the same machine recycled — an
#: intrusion may survive it, which is what escalation is for).
ServiceFactory = Callable[[int, str, int, str], ReconfigurableService]


class OrchestratorConfig:
    """Execution knobs: tick cadence, timeouts, backoff (docs/SELFHEALING.md)."""

    def __init__(
        self,
        tick_interval: float = 5.0,
        commit_timeout: float = 120.0,
        onboard_timeout: float = 600.0,
        retry_base: float = 2.0,
        retry_cap: float = 60.0,
        max_retries: int = 8,
        silence_after: Optional[float] = None,
    ):
        if tick_interval <= 0:
            raise ConfigError("tick_interval must be positive")
        if retry_base <= 0 or retry_cap < retry_base:
            raise ConfigError("need 0 < retry_base <= retry_cap")
        self.tick_interval = tick_interval
        self.commit_timeout = commit_timeout
        self.onboard_timeout = onboard_timeout
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.max_retries = max_retries
        self.silence_after = silence_after


class _Execution:
    """One in-flight action's mutable state."""

    def __init__(self, action: Action, started: float):
        self.action = action
        self.state = PENDING
        self.started = started
        self.attempts = 0
        self.submit_token = 0
        self.submitted_at = 0.0
        self.target_epoch: Optional[int] = None
        self.member: Optional[str] = None
        #: the member name was taken from the spare pool (vs. pinned by
        #: the action) — a failed execution must return it
        self.spare_taken = False
        self.successor: Optional[ReconfigurableService] = None
        self.error: Optional[str] = None


class HealOrchestrator:
    """Autonomous detect → plan → repair loop over one replica group."""

    def __init__(
        self,
        runtime: Any,
        services: Dict[int, Optional[ReconfigurableService]],
        *,
        scorer: Optional[SuspicionScorer] = None,
        planner: Optional[RecoveryPlanner] = None,
        watchdog: Optional[LivenessWatchdog] = None,
        monitor: Optional[EquivocationMonitor] = None,
        spares: Optional[List[str]] = None,
        service_factory: Optional[ServiceFactory] = None,
        config: Optional[OrchestratorConfig] = None,
        recorder: Optional[Recorder] = None,
    ):
        if watchdog is not None and watchdog.raise_on_stall:
            raise ConfigError(
                "the orchestrator needs a report-mode watchdog "
                "(LivenessWatchdog(..., raise_on_stall=False))"
            )
        self.runtime = runtime
        self.services = services
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.scorer = scorer if scorer is not None else SuspicionScorer(recorder=self.obs)
        self.planner = planner if planner is not None else RecoveryPlanner(recorder=self.obs)
        self.watchdog = watchdog
        self.monitor = monitor
        self.spares: List[str] = list(spares or [])
        self.service_factory = service_factory
        self.config = config or OrchestratorConfig()
        self.active = False
        self.ticks = 0
        self.stats: Dict[str, int] = {
            "replaced": 0,
            "restarted": 0,
            "quarantined": 0,
            "refreshed": 0,
            "rollbacks": 0,
            "aborts": 0,
            "retries": 0,
            "fenced": 0,
        }
        #: completed heal records (action kind, slot, duration, outcome)
        self.heals: List[Dict[str, Any]] = []
        self._in_flight: Optional[_Execution] = None
        self._fenced: Set[int] = set()
        self._cooldowns: Dict[int, float] = {}
        self._restarts: Dict[int, int] = {}
        self._last_refresh = 0.0
        self._err_seen: Dict[int, int] = {}

    # -- wiring ----------------------------------------------------------------------

    def attach(self) -> "HealOrchestrator":
        """Hook every evidence stream; call once before :meth:`start`."""
        for slot, svc in self.services.items():
            if svc is not None:
                self._hook_service(slot, svc)
        if self.watchdog is not None:
            self.watchdog.stall_listeners.append(self._on_stall)
            self.watchdog.transition_listeners.append(self._on_fd_transition)
        if self.monitor is not None:
            self.monitor.install(self.runtime)
        self._last_refresh = self.runtime.now
        return self

    def _hook_service(self, slot: int, svc: ReconfigurableService) -> None:
        svc.epoch_listeners.append(
            lambda event, value, _slot=slot: self._on_epoch_event(_slot, event, value)
        )

    def watch_services(self) -> None:
        """Register one service sentinel per live replica on the watchdog."""
        if self.watchdog is None:
            raise ConfigError("no watchdog to watch services with")
        for slot in sorted(self.services):
            svc = self.services[slot]
            if svc is not None:
                self.watchdog.watch(sentinel_for(f"svc[{slot}]", slot, svc))

    # -- evidence ingestion ----------------------------------------------------------

    def ingest(self, evidence: Evidence) -> None:
        """External evidence entry point (also the monitor's sink)."""
        if evidence.party in self._fenced:
            return
        self.scorer.add(evidence)

    def _on_stall(self, sentinel: ProgressSentinel, stalled_for: float) -> None:
        self.ingest(
            Evidence(
                EV_STALL,
                sentinel.party,
                self.runtime.now,
                detail=f"{sentinel.name} stalled {stalled_for:.1f}s",
            )
        )

    def _on_fd_transition(self, peer: int, old: str, new: str) -> None:
        if new == SUSPECT:
            self.ingest(Evidence(EV_FD_SUSPECT, peer, self.runtime.now))
        elif new == DOWN:
            self.ingest(Evidence(EV_FD_DOWN, peer, self.runtime.now))

    def _scan_router_errors(self) -> None:
        """Contained protocol errors are attributable anomaly evidence."""
        now = self.runtime.now
        for i, router in enumerate(self.runtime.routers):
            start = self._err_seen.get(i, 0)
            errors = router.errors
            for pid, sender, exc in errors[start:]:
                kind = (
                    EV_BAD_SHARE
                    if "share" in type(exc).__name__.lower()
                    else EV_BAD_CERT
                )
                self.ingest(
                    Evidence(kind, sender, now, detail=f"{pid}: {type(exc).__name__}")
                )
            self._err_seen[i] = len(errors)

    def _check_silence(self) -> None:
        if self.monitor is None or self.config.silence_after is None:
            return
        now = self.runtime.now
        for party in self.monitor.silent_parties(now, self.config.silence_after):
            if party in self.services and self.services[party] is not None:
                self.ingest(Evidence(EV_SILENCE, party, now))

    # -- epoch events ----------------------------------------------------------------

    def _on_epoch_event(self, slot: int, event: str, value: int) -> None:
        if event == "barrier":
            # the frozen-channel window is expected silence, not a stall
            if self.watchdog is not None:
                self.watchdog.suspend()
            return
        if self.watchdog is not None:
            self.watchdog.resume()
        # every committed epoch change rotates every share (the keychain
        # derives per-epoch material), so any commit resets the proactive
        # refresh clock.
        self._last_refresh = self.runtime.now
        exec_ = self._in_flight
        if (
            exec_ is not None
            and exec_.state == SUBMITTED
            and exec_.target_epoch is not None
            and value >= exec_.target_epoch
        ):
            self._committed(exec_)

    # -- the control loop ------------------------------------------------------------

    def start(self) -> None:
        if self.active:
            return
        self.active = True
        if self.obs.enabled:
            self.obs.count("heal.started")
        self._schedule_tick()

    def stop(self) -> None:
        """Stop scheduling ticks (in-flight timers drain as no-ops)."""
        self.active = False

    def _schedule_tick(self) -> None:
        self.runtime.sim.schedule(self.config.tick_interval, self._tick)

    def _tick(self) -> None:
        if not self.active:
            return
        self.ticks += 1
        now = self.runtime.now
        if self.obs.enabled:
            self.obs.count("heal.ticks")
        self._scan_router_errors()
        self._check_silence()
        self.scorer.compact(now)
        if self._in_flight is None:
            action = self.planner.plan(self._view(now))
            if action is not None:
                self._execute(action)
        self._schedule_tick()

    def _view(self, now: float) -> GroupView:
        n = len(self.services)
        live = {
            slot
            for slot, svc in self.services.items()
            if svc is not None and slot not in self._fenced
        }
        scores = {slot: self.scorer.score(slot, now) for slot in self.services}
        byzantine = {
            slot: self.scorer.byzantine_score(slot, now) for slot in self.services
        }
        replace_at = self.planner.config.replace_threshold
        restart_at = self.planner.config.restart_threshold
        healthy = {
            slot
            for slot in live
            if byzantine[slot] < replace_at and scores[slot] < restart_at
        }
        t = 0
        vacancies = 0
        roster_members: tuple = ()
        for slot in sorted(live):
            svc = self.services[slot]
            if svc is not None:
                t = svc.party.t
                roster_members = svc.roster.members
                vacancies = sum(1 for m in roster_members if m is None)
                break
        dark = {
            slot
            for slot in self._fenced
            if slot < len(roster_members) and roster_members[slot] is not None
        }
        return GroupView(
            n=n,
            t=t,
            now=now,
            live=live,
            healthy=healthy,
            scores=scores,
            byzantine=byzantine,
            spares=len(self.spares),
            vacancies=vacancies,
            last_refresh=self._last_refresh,
            in_flight=self._in_flight is not None,
            cooldowns=dict(self._cooldowns),
            restarts=dict(self._restarts),
            fenced=dark,
        )

    # -- execution -------------------------------------------------------------------

    def _scope(self, action: Action) -> Any:
        return ("heal", action.kind)

    def _execute(self, action: Action) -> None:
        exec_ = _Execution(action, self.runtime.now)
        self._in_flight = exec_
        if self.obs.enabled:
            self.obs.count(f"heal.action.{action.kind}")
            self.obs.phase(self._scope(action), f"heal.{action.kind}.e2e")
        if isinstance(action, (DrainAndReplace, Quarantine, RestartReplica)):
            self._fence(action.slot)
        if isinstance(action, DrainAndReplace):
            if action.member:
                exec_.member = action.member
            elif self.spares:
                exec_.member = self.spares.pop(0)
                exec_.spare_taken = True
            else:
                self._abort(exec_, "no spare available at execution time")
                return
        if isinstance(action, RestartReplica):
            # no epoch change: recycle the process in place and re-onboard
            # it from the group's certified state.
            svc = None
            for s in self.services.values():
                if s is not None:
                    svc = s
                    break
            if svc is None:
                self._abort(exec_, "no live service to restart against")
                return
            member = svc.roster.members[action.slot] or f"replica-{action.slot}"
            exec_.target_epoch = svc.membership_epoch
            self._onboard(exec_, action.slot, member)
            return
        self._submit(exec_)

    def _fence(self, slot: int) -> None:
        """Power the victim off before surgery (operator fencing)."""
        svc = self.services.get(slot)
        if svc is None or slot in self._fenced:
            return
        try:
            svc.shutdown()
        except ReproError:
            pass  # already closed — fencing is idempotent
        self._fenced.add(slot)
        self.stats["fenced"] += 1
        if self.watchdog is not None:
            self.watchdog.unwatch(f"svc[{slot}]")
        if self.obs.enabled:
            self.obs.count("heal.fence")

    def _executors(self) -> List[ReconfigurableService]:
        out = []
        for slot in sorted(self.services):
            svc = self.services[slot]
            if svc is not None and slot not in self._fenced:
                out.append(svc)
        return out

    def _submit(self, exec_: _Execution) -> None:
        if self._in_flight is not exec_ or exec_.state not in (PENDING,):
            return
        executors = self._executors()
        if not executors:
            self._abort(exec_, "no live executor replica")
            return
        svc = executors[exec_.attempts % len(executors)]
        action = exec_.action
        try:
            if isinstance(action, DrainAndReplace):
                target = svc.drain_and_replace(action.slot, exec_.member or "")
            elif isinstance(action, Quarantine):
                target = svc.retire_slot(action.slot)
            else:
                target = svc.refresh_shares()
        except (ReconfigInProgress, ChannelCongested, ServiceNotOpen) as exc:
            self._retry(exec_, str(exc))
            return
        except ConfigError as exc:
            self._abort(exec_, f"inadmissible change: {exc}")
            return
        exec_.state = SUBMITTED
        exec_.submitted_at = self.runtime.now
        exec_.submit_token += 1
        exec_.target_epoch = target
        if self.obs.enabled:
            self.obs.count("heal.submitted")
        token = exec_.submit_token
        self.runtime.sim.schedule(
            self.config.commit_timeout, self._commit_timeout, exec_, token
        )

    def _retry(self, exec_: _Execution, why: str) -> None:
        exec_.attempts += 1
        if exec_.attempts > self.config.max_retries:
            self._abort(exec_, f"retries exhausted: {why}")
            return
        self.stats["retries"] += 1
        if self.obs.enabled:
            self.obs.count("heal.retry")
        delay = min(
            self.config.retry_cap,
            self.config.retry_base * 2.0 ** (exec_.attempts - 1),
        )
        self.runtime.sim.schedule(delay, self._submit, exec_)

    def _commit_timeout(self, exec_: _Execution, token: int) -> None:
        if (
            self._in_flight is not exec_
            or exec_.state != SUBMITTED
            or exec_.submit_token != token
        ):
            return
        self._rollback(exec_, "epoch commit timed out")

    def _committed(self, exec_: _Execution) -> None:
        exec_.state = COMMITTED
        if self.obs.enabled:
            self.obs.count("heal.committed")
        action = exec_.action
        if isinstance(action, DrainAndReplace):
            self._onboard(exec_, action.slot, exec_.member or "")
        elif isinstance(action, Quarantine):
            self._finish(exec_, "quarantined")
        else:
            self._finish(exec_, "refreshed")

    def _onboard(self, exec_: _Execution, slot: int, member: str) -> None:
        if self.service_factory is None:
            self._abort(exec_, "no service factory to onboard with")
            return
        exec_.state = ONBOARDING
        exec_.member = member
        floor = exec_.target_epoch if exec_.target_epoch is not None else 0
        kind = "restart" if isinstance(exec_.action, RestartReplica) else "replace"
        try:
            successor = self.service_factory(slot, member, floor, kind)
            exec_.successor = successor
            future = successor.recover()
        except ReproError as exc:
            self._rollback(exec_, f"onboarding failed to launch: {exc}")
            return
        if self.obs.enabled:
            self.obs.count("heal.onboarding")

        def waiter():  # type: ignore[no-untyped-def]
            yield future
            self._onboard_done(exec_, slot)

        self.runtime.spawn(waiter())
        self.runtime.sim.schedule(
            self.config.onboard_timeout, self._onboard_timeout, exec_
        )

    def _onboard_done(self, exec_: _Execution, slot: int) -> None:
        if self._in_flight is not exec_ or exec_.state != ONBOARDING:
            return  # timed out and rolled back while we recovered
        successor = exec_.successor
        assert successor is not None
        self.services[slot] = successor
        self._fenced.discard(slot)
        self._hook_service(slot, successor)
        self.scorer.clear(slot)
        if self.monitor is not None:
            self.monitor.forget(slot)
        if self.watchdog is not None:
            self.watchdog.watch(sentinel_for(f"svc[{slot}]", slot, successor))
        if isinstance(exec_.action, RestartReplica):
            self._restarts[slot] = self._restarts.get(slot, 0) + 1
            self._finish(exec_, "restarted")
        else:
            # a fresh machine in the slot: restart history is moot
            self._restarts.pop(slot, None)
            self._finish(exec_, "replaced")

    def _onboard_timeout(self, exec_: _Execution) -> None:
        if self._in_flight is not exec_ or exec_.state != ONBOARDING:
            return
        if exec_.successor is not None:
            try:
                exec_.successor.shutdown()
            except ReproError:
                pass
        self._rollback(exec_, "onboarding timed out mid-transfer")

    def _slot_of(self, action: Action) -> Optional[int]:
        return getattr(action, "slot", None)

    def _return_spare(self, exec_: _Execution) -> None:
        """A spare consumed by a failed execution goes back to the pool.

        Its name is burnt (the roster may have seen it), so the returned
        spare gets a retry suffix — spare identity is operator-facing
        labeling, not key material, which is always epoch-derived.
        """
        if exec_.spare_taken and exec_.member:
            self.spares.append(f"{exec_.member}+retry")
            exec_.spare_taken = False

    def _finish(self, exec_: _Execution, outcome: str) -> None:
        exec_.state = DONE
        self.stats[outcome] += 1
        now = self.runtime.now
        if self.obs.enabled:
            self.obs.count(f"heal.{outcome}")
            self.obs.observe("heal.action.seconds", now - exec_.started)
            self.obs.phase_end(self._scope(exec_.action))
        self.heals.append(
            {
                "action": exec_.action.kind,
                "slot": self._slot_of(exec_.action),
                "member": exec_.member,
                "epoch": exec_.target_epoch,
                "outcome": outcome,
                "seconds": round(now - exec_.started, 6),
            }
        )
        self._in_flight = None

    def _rollback(self, exec_: _Execution, why: str) -> None:
        """Abandon the execution without wedging the group.

        The fenced slot stays fenced (the group runs on ``>= n - t``
        replicas, which is exactly what the guardrail guaranteed before
        fencing) and the slot enters a cooldown so the planner can try
        again later rather than thrash.
        """
        exec_.state = ROLLED_BACK
        exec_.error = why
        self.stats["rollbacks"] += 1
        self._return_spare(exec_)
        if isinstance(exec_.action, RestartReplica):
            # a restart that could not even come back counts toward
            # escalation just like one that came back sick
            self._restarts[exec_.action.slot] = (
                self._restarts.get(exec_.action.slot, 0) + 1
            )
        slot = self._slot_of(exec_.action)
        if slot is not None:
            self._cooldowns[slot] = self.runtime.now + self.planner.config.slot_cooldown
        if self.obs.enabled:
            self.obs.count("heal.rollback")
            self.obs.phase_end(self._scope(exec_.action))
        self.heals.append(
            {
                "action": exec_.action.kind,
                "slot": slot,
                "member": exec_.member,
                "epoch": exec_.target_epoch,
                "outcome": "rolled-back",
                "error": why,
            }
        )
        self._in_flight = None

    def _abort(self, exec_: _Execution, why: str) -> None:
        """Give up on an execution that never reached the total order."""
        exec_.state = ROLLED_BACK
        exec_.error = why
        self.stats["aborts"] += 1
        self._return_spare(exec_)
        slot = self._slot_of(exec_.action)
        if slot is not None:
            self._cooldowns[slot] = self.runtime.now + self.planner.config.slot_cooldown
        if self.obs.enabled:
            self.obs.count("heal.abort")
            self.obs.phase_end(self._scope(exec_.action))
        self.heals.append(
            {
                "action": exec_.action.kind,
                "slot": slot,
                "member": exec_.member,
                "outcome": "aborted",
                "error": why,
            }
        )
        self._in_flight = None

    # -- reporting -------------------------------------------------------------------

    def dump(self) -> Dict[str, Any]:
        now = self.runtime.now
        return {
            "now": round(now, 6),
            "active": self.active,
            "fenced": sorted(self._fenced),
            "spares": list(self.spares),
            "in_flight": (
                {
                    "action": self._in_flight.action.kind,
                    "state": self._in_flight.state,
                    "attempts": self._in_flight.attempts,
                }
                if self._in_flight is not None
                else None
            ),
            "stats": dict(self.stats),
            "suspicion": self.scorer.dump(now),
            "heals": list(self.heals),
        }


__all__ = [
    "HealOrchestrator",
    "OrchestratorConfig",
    "ServiceFactory",
    "PENDING",
    "SUBMITTED",
    "COMMITTED",
    "ONBOARDING",
    "DONE",
    "ROLLED_BACK",
]
