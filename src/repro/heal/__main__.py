"""``python -m repro.heal`` — run or replay closed-loop heal campaigns.

One case: an n-replica group under live intrusion must autonomously
detect, drain, and replace the compromised replica, converge on
identical state, and reject a renewed attack from pre-refresh shares.

Environment:

* ``HEAL_REPRO_FILE`` — append one ``HEAL-REPRO:`` replay line per
  failing case (the CI artifact of a failing heal job);
* ``REPRO_BENCH_DIR`` — export one ``BENCH_heal-*.json`` record per run
  carrying the ``heal.*`` counters and phase timings.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import List, Optional, Sequence

from repro.adversary.strategies import STRATEGIES
from repro.common import rng as rng_mod
from repro.heal.scenario import HealResult, run_heal_case
from repro.obs.export import bench_dir_from_env, make_record, write_record
from repro.obs.recorder import MemoryRecorder


def report_failures(failures: Sequence[HealResult]) -> str:
    """Repro lines for failing cases; also honors ``HEAL_REPRO_FILE``."""
    lines = [f.repro_line() for f in failures]
    text = "\n".join(lines)
    path = os.environ.get("HEAL_REPRO_FILE")
    if path and lines:
        with open(path, "a") as f:
            f.write(text + "\n")
    return text


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.heal",
        description="Closed-loop intrusion-recovery campaigns for SINTRA.",
    )
    parser.add_argument(
        "--strategy", default="doublevote", choices=sorted(STRATEGIES),
        help="intrusion strategy the victim replica runs",
    )
    parser.add_argument("--n", type=int, default=4)
    parser.add_argument("--t", type=int, default=1)
    parser.add_argument(
        "--case", default=None,
        help="replay exactly this case seed (hex or int)",
    )
    parser.add_argument(
        "--victim", type=int, default=None,
        help="pin the compromised slot (default: derived from the case seed)",
    )
    parser.add_argument(
        "--seed", default="0xc0ffee",
        help="campaign root seed; case i uses derive(seed, 'heal', i)",
    )
    parser.add_argument("--iterations", type=int, default=1)
    parser.add_argument("--deadline", type=float, default=20.0)
    parser.add_argument("--time-limit", type=float, default=2000.0)
    parser.add_argument(
        "--bench-name", default=None,
        help="override the exported BENCH record name",
    )
    args = parser.parse_args(argv)

    cases: List[int]
    if args.case is not None:
        cases = [rng_mod.parse_seed(args.case)]
    else:
        root = rng_mod.parse_seed(args.seed)
        cases = [
            rng_mod.derive(root, "heal", i).getrandbits(32)
            for i in range(args.iterations)
        ]

    recorder = MemoryRecorder()
    results: List[HealResult] = []
    failures: List[HealResult] = []
    for case_seed in cases:
        with tempfile.TemporaryDirectory(prefix="repro-heal-") as workdir:
            result = run_heal_case(
                args.strategy,
                case_seed,
                workdir,
                n=args.n,
                t=args.t,
                victim=args.victim,
                recorder=recorder,
                deadline=args.deadline,
                time_limit=args.time_limit,
            )
        results.append(result)
        status = "ok" if result.ok else "FAIL"
        print(
            f"[{status}] strategy={result.strategy} case={hex(result.case_seed)}"
            f" victim={result.victim} detected={result.detected}"
            f" replaced={result.replaced} epoch={result.final_epoch}"
            f" digests_agree={result.digests_agree}"
            f" stale_rejected={result.stale_share_rejected}"
        )
        if not result.ok:
            failures.append(result)

    bench_dir = bench_dir_from_env()
    if bench_dir:
        name = args.bench_name or f"heal-{args.strategy}-n{args.n}t{args.t}"
        record = make_record(
            name,
            experiment="heal-campaign",
            meta={
                "strategy": args.strategy,
                "n": args.n,
                "t": args.t,
                "cases": [hex(c) for c in cases],
            },
            metrics={
                "cases": float(len(results)),
                "failures": float(len(failures)),
                "replaced": float(sum(1 for r in results if r.replaced)),
            },
            recorder=recorder,
            outcome="ok" if not failures else "fail",
        )
        path = write_record(bench_dir, record)
        print(f"bench record: {path}")

    if failures:
        print(report_failures(failures))
        return 1
    print(
        f"OK: {len(results)} heal case(s) strategy={args.strategy}"
        f" n={args.n} t={args.t}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
