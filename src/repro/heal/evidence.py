"""Evidence fusion for intrusion recovery: who is misbehaving, how badly?

The orchestrator never acts on a single signal.  SINTRA's failure
detector is *unreliable by design* (under asynchrony it must be), a
liveness stall can be an innocent network hiccup, and even a rejected
share can be a replay artifact — but a replica that keeps producing such
evidence is either compromised or broken, and either way it is a
candidate for surgery.  This module turns the heterogeneous evidence
streams into one comparable quantity per replica:

* :class:`Evidence` — a typed observation (``kind``, accused ``party``,
  timestamp, weight);
* :class:`SuspicionScorer` — fuses evidence into a per-replica score
  with exponential half-life decay, so one flaky link fades away while
  sustained Byzantine behaviour accumulates past the planner's
  thresholds.  Byzantine evidence (equivocation, bad shares, rejected
  certificates) is tracked separately from liveness evidence (failure
  detector transitions, watchdog stalls): the planner replaces proven
  intruders but merely restarts replicas that just stopped making
  progress;
* :class:`EquivocationMonitor` — the router tap.  An honest broadcast
  delivers byte-identical payloads to every replica; a split vote (the
  ``doublevote`` strategy) necessarily shows *different* payloads for
  the same ``(sender, pid, mtype, round)`` key at different observers.
  Comparing digests across all routers turns equivocation — the paper's
  canonical Byzantine act — into attributable evidence.  The same tap
  tracks per-sender last-activity, giving the orchestrator a silence
  signal that works even while the group as a whole keeps progressing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.obs.recorder import NULL as NULL_RECORDER
from repro.obs.recorder import Recorder

EV_FD_SUSPECT = "fd-suspect"
EV_FD_DOWN = "fd-down"
EV_STALL = "stall"
EV_SILENCE = "silence"
EV_BAD_SHARE = "bad-share"
EV_BAD_CERT = "bad-cert"
EV_EQUIVOCATION = "equivocation"

#: evidence kinds that indicate *Byzantine* behaviour (attributable
#: protocol violations) rather than mere unresponsiveness.
BYZANTINE_KINDS = frozenset({EV_BAD_SHARE, EV_BAD_CERT, EV_EQUIVOCATION})

#: default weight per observation, by kind.  Equivocation is close to a
#: cryptographic proof of compromise and lands above any sane replace
#: threshold in two observations; failure-detector suspicion is cheap
#: noise that needs corroboration or persistence.
DEFAULT_WEIGHTS: Dict[str, float] = {
    EV_FD_SUSPECT: 1.0,
    EV_FD_DOWN: 3.0,
    EV_STALL: 2.0,
    EV_SILENCE: 2.0,
    EV_BAD_SHARE: 2.0,
    EV_BAD_CERT: 2.5,
    EV_EQUIVOCATION: 6.0,
}


@dataclass(frozen=True)
class Evidence:
    """One observation accusing ``party``, weighted by ``kind``."""

    kind: str
    party: int
    at: float
    weight: float = 0.0
    detail: str = ""

    def effective_weight(self) -> float:
        return self.weight if self.weight > 0 else DEFAULT_WEIGHTS.get(self.kind, 1.0)

    @property
    def byzantine(self) -> bool:
        return self.kind in BYZANTINE_KINDS


class SuspicionScorer:
    """Per-replica health scoring with exponential half-life decay.

    Each piece of evidence contributes ``weight * 0.5 ** (age / half_life)``
    to its party's score at query time — an isolated failure-detector
    blip decays to irrelevance within a few half-lives, while a replica
    under active intrusion keeps its score pinned above threshold.
    :meth:`clear` forgets a party's history after it has been healed
    (replaced, restarted) so the successor starts with a clean slate.
    """

    def __init__(
        self,
        half_life: float = 30.0,
        recorder: Optional[Recorder] = None,
    ):
        if half_life <= 0:
            raise ValueError("scorer half_life must be positive")
        self.half_life = half_life
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self._evidence: Dict[int, List[Evidence]] = {}
        self.total_observations = 0

    def add(self, evidence: Evidence) -> None:
        self._evidence.setdefault(evidence.party, []).append(evidence)
        self.total_observations += 1
        if self.obs.enabled:
            self.obs.count(f"heal.evidence.{evidence.kind}")

    def evidence_for(self, party: int) -> List[Evidence]:
        return list(self._evidence.get(party, []))

    def _decayed(self, evidence: Evidence, now: float) -> float:
        age = max(0.0, now - evidence.at)
        return evidence.effective_weight() * 0.5 ** (age / self.half_life)

    def score(self, party: int, now: float) -> float:
        return sum(self._decayed(e, now) for e in self._evidence.get(party, []))

    def byzantine_score(self, party: int, now: float) -> float:
        return sum(
            self._decayed(e, now)
            for e in self._evidence.get(party, [])
            if e.byzantine
        )

    def scores(self, now: float) -> Dict[int, float]:
        return {party: self.score(party, now) for party in self._evidence}

    def clear(self, party: int) -> None:
        """Forget a party's evidence (after the slot has been healed)."""
        self._evidence.pop(party, None)

    def compact(self, now: float, floor: float = 1e-3) -> None:
        """Drop evidence whose decayed contribution fell below ``floor``."""
        for party in list(self._evidence):
            kept = [
                e for e in self._evidence[party] if self._decayed(e, now) >= floor
            ]
            if kept:
                self._evidence[party] = kept
            else:
                del self._evidence[party]

    def dump(self, now: float) -> Dict[str, Any]:
        return {
            str(party): {
                "score": round(self.score(party, now), 4),
                "byzantine": round(self.byzantine_score(party, now), 4),
                "kinds": sorted({e.kind for e in items}),
            }
            for party, items in self._evidence.items()
        }


def _payload_digest(payload: Any) -> str:
    """A stable digest of a broadcast payload for cross-observer
    comparison.  ``repr`` is deterministic for the tuple/int/bytes
    payloads the vote messages carry; this is an evidence heuristic, not
    a cryptographic commitment."""
    return hashlib.sha256(repr(payload).encode()).hexdigest()[:24]


def _payload_round(payload: Any) -> int:
    if isinstance(payload, tuple) and payload and isinstance(payload[0], int):
        return payload[0]
    return 0


class EquivocationMonitor:
    """Cross-replica router tap detecting split broadcasts and silence.

    One observer callback is installed per router (:meth:`install`).
    For each watched broadcast message type, the payload digest seen by
    each observing party is recorded under ``(sender, pid, mtype,
    round)``; the moment two observers hold *different* digests for the
    same key, the sender provably equivocated and an
    :data:`EV_EQUIVOCATION` evidence is emitted to the sink — once per
    key, so a sustained double-vote campaign scores per round, not per
    delivery.

    The tap also keeps a per-*pair* last-activity clock over all message
    types: when did observer ``o`` last hear anything from sender ``s``?
    :meth:`silent_parties` reports senders that have starved at least
    one observer for longer than a threshold while that same observer
    kept hearing from everyone else.  The asymmetry matters: a replica
    running *selective* silence (the ``silence`` strategy mutes only a
    targeted honest minority, staying chatty toward the rest) is
    invisible to any global activity clock, but its victims' inboxes
    show the hole immediately.  An observer whose whole inbox is stale
    votes for nobody — global quiet (an epoch barrier, an idle group) is
    expected silence, not evidence.
    """

    #: broadcast message types where honest senders are value-consistent.
    WATCHED_MTYPES = frozenset({"pre-vote", "main-vote", "decide"})

    def __init__(
        self,
        sink: Callable[[Evidence], None],
        clock: Callable[[], float],
        recorder: Optional[Recorder] = None,
    ):
        self.sink = sink
        self.clock = clock
        self.obs = recorder if recorder is not None else NULL_RECORDER
        #: key -> digest -> observer parties that saw it
        self._seen: Dict[Tuple[int, str, str, int], Dict[str, Set[int]]] = {}
        self._flagged: Set[Tuple[int, str, str, int]] = set()
        self.last_seen: Dict[int, float] = {}
        #: observer -> sender -> last time the observer heard the sender
        self._heard: Dict[int, Dict[int, float]] = {}
        self.equivocations = 0

    def install(self, runtime: Any, parties: Optional[List[int]] = None) -> None:
        """Register one observer per router (all routers by default)."""
        targets = parties if parties is not None else list(range(len(runtime.routers)))
        now = self.clock()
        for i in targets:
            runtime.routers[i].observers.append(self.observer_for(i))
        for i in targets:
            self.last_seen.setdefault(i, now)
            inbox = self._heard.setdefault(i, {})
            for j in targets:
                if j != i:
                    inbox.setdefault(j, now)

    def observer_for(self, observer: int) -> Callable[[int, str, str, Any], None]:
        def observe(sender: int, pid: str, mtype: str, payload: Any) -> None:
            self._observe(observer, sender, pid, mtype, payload)

        return observe

    def _observe(
        self, observer: int, sender: int, pid: str, mtype: str, payload: Any
    ) -> None:
        now = self.clock()
        prev = self.last_seen.get(sender)
        if prev is None or now > prev:
            self.last_seen[sender] = now
        if sender != observer:
            inbox = self._heard.setdefault(observer, {})
            if now > inbox.get(sender, -1.0):
                inbox[sender] = now
        if mtype not in self.WATCHED_MTYPES:
            return
        key = (sender, pid, mtype, _payload_round(payload))
        if key in self._flagged:
            return
        digests = self._seen.setdefault(key, {})
        digests.setdefault(_payload_digest(payload), set()).add(observer)
        if len(digests) > 1:
            self._flagged.add(key)
            self.equivocations += 1
            if self.obs.enabled:
                self.obs.count("heal.equivocation.observed")
            self.sink(
                Evidence(
                    EV_EQUIVOCATION,
                    sender,
                    now,
                    detail=f"split {mtype} r{key[3]} on {pid}",
                )
            )

    def silent_parties(self, now: float, silence_after: float) -> List[int]:
        """Senders that starved at least one *otherwise-fresh* observer.

        A sender is reported when some observer has not heard from it
        for ``silence_after`` even though that observer heard from a
        different sender within the window — so selective silence is
        caught by its victims, while a globally quiet period (barrier,
        idle group) produces no accusations at all.
        """
        accused: Set[int] = set()
        for observer, inbox in self._heard.items():
            if not inbox:
                continue
            if now - max(inbox.values()) >= silence_after:
                continue  # this inbox is globally stale — expected quiet
            accused.update(
                sender
                for sender, last in inbox.items()
                if now - last >= silence_after
            )
        return sorted(accused)

    def forget(self, party: int) -> None:
        """Reset a party's activity clocks (evicted/replaced slot)."""
        now = self.clock()
        self.last_seen[party] = now
        for inbox in self._heard.values():
            if party in inbox:
                inbox[party] = now
        if party in self._heard:
            self._heard[party] = {
                sender: now for sender in self._heard[party]
            }


__all__ = [
    "Evidence",
    "SuspicionScorer",
    "EquivocationMonitor",
    "EV_FD_SUSPECT",
    "EV_FD_DOWN",
    "EV_STALL",
    "EV_SILENCE",
    "EV_BAD_SHARE",
    "EV_BAD_CERT",
    "EV_EQUIVOCATION",
    "BYZANTINE_KINDS",
    "DEFAULT_WEIGHTS",
]
