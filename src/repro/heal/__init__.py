"""Self-healing replication: the automated intrusion-recovery orchestrator.

Closes the loop the paper leaves to the operator: evidence of intrusion
or failure (failure detector, liveness watchdog, protocol anomalies,
equivocation at the router tap) is fused into per-replica suspicion
scores, a guardrailed planner chooses typed repair actions, and the
orchestrator executes them through epoch reconfiguration — refresh,
drain-and-replace, restart, quarantine — with retries, timeouts and
rollback.  See docs/SELFHEALING.md.
"""

from repro.heal.evidence import (
    BYZANTINE_KINDS,
    EV_BAD_CERT,
    EV_BAD_SHARE,
    EV_EQUIVOCATION,
    EV_FD_DOWN,
    EV_FD_SUSPECT,
    EV_SILENCE,
    EV_STALL,
    EquivocationMonitor,
    Evidence,
    SuspicionScorer,
)
from repro.heal.orchestrator import (
    HealOrchestrator,
    OrchestratorConfig,
    ServiceFactory,
)
from repro.heal.planner import (
    Action,
    DrainAndReplace,
    GroupView,
    PlannerConfig,
    Quarantine,
    RecoveryPlanner,
    RefreshShares,
    RestartReplica,
)
from repro.heal.scenario import (
    CounterMachine,
    HealResult,
    heal_group,
    run_heal_case,
    stale_share_rejected,
)

__all__ = [
    "Evidence",
    "SuspicionScorer",
    "EquivocationMonitor",
    "EV_FD_SUSPECT",
    "EV_FD_DOWN",
    "EV_STALL",
    "EV_SILENCE",
    "EV_BAD_SHARE",
    "EV_BAD_CERT",
    "EV_EQUIVOCATION",
    "BYZANTINE_KINDS",
    "Action",
    "RefreshShares",
    "DrainAndReplace",
    "RestartReplica",
    "Quarantine",
    "PlannerConfig",
    "GroupView",
    "RecoveryPlanner",
    "HealOrchestrator",
    "OrchestratorConfig",
    "ServiceFactory",
    "CounterMachine",
    "HealResult",
    "heal_group",
    "run_heal_case",
    "stale_share_rejected",
]
