"""The recovery planner: typed repair actions under degradation guardrails.

Given the scorer's current picture, the planner decides *what* to do
next; the orchestrator decides *how* (submission, retries, timeouts,
rollback).  Actions, strongest first:

* :class:`DrainAndReplace` — evict the replica and seat a spare in its
  slot in one epoch step; every share rotates at the barrier, so the
  evicted replica's key material is provably stale afterwards (the
  paper's mobile-adversary countermeasure applied reactively);
* :class:`Quarantine` — evict without a spare, leaving the seat vacant
  (bounded by ``t`` vacancies): the refresh-only degradation path;
* :class:`RestartReplica` — recycle the replica process in place and
  re-onboard it by certified state transfer; chosen for sustained
  *liveness* evidence with no Byzantine proof;
* :class:`RefreshShares` — rotate shares without touching the roster;
  scheduled proactively every ``refresh_interval`` seconds regardless
  of suspicion, and reactively as the fallback when surgery is vetoed.

Guardrails (each veto is counted, never silent):

1. **one reconfiguration in flight** — the planner returns nothing
   while the orchestrator is executing;
2. **never drop below ``n - t`` healthy replicas** — fencing a replica
   that still counts as healthy is vetoed unless ``healthy - 1 >= n - t``
   (``heal.guardrail.vetoed``);
3. **no spare, no surgery** — replacement degrades to quarantine when a
   vacancy is admissible, else to refresh-only mode
   (``heal.fallback.refresh_only``), which still invalidates whatever
   shares an intruder may have exfiltrated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Iterable, Optional, Set, Union

from repro.obs.recorder import NULL as NULL_RECORDER
from repro.obs.recorder import Recorder


@dataclass(frozen=True)
class RefreshShares:
    kind: ClassVar[str] = "refresh"
    #: True when this refresh substitutes for a vetoed stronger action.
    fallback: bool = False


@dataclass(frozen=True)
class DrainAndReplace:
    kind: ClassVar[str] = "replace"
    slot: int = 0
    member: str = ""


@dataclass(frozen=True)
class RestartReplica:
    kind: ClassVar[str] = "restart"
    slot: int = 0


@dataclass(frozen=True)
class Quarantine:
    kind: ClassVar[str] = "quarantine"
    slot: int = 0


Action = Union[RefreshShares, DrainAndReplace, RestartReplica, Quarantine]


@dataclass
class PlannerConfig:
    """Tuning knobs (see docs/SELFHEALING.md for guidance).

    ``replace_threshold`` applies to the *Byzantine* component of a
    replica's score; ``restart_threshold`` to the total score of a
    replica with no Byzantine evidence.  ``refresh_interval`` is the
    proactive cadence R; ``None`` disables proactive refresh.
    """

    replace_threshold: float = 5.0
    restart_threshold: float = 6.0
    refresh_interval: Optional[float] = 300.0
    #: refractory period after a failed/vetoed action on the same slot,
    #: so the planner does not re-propose surgery every tick.
    slot_cooldown: float = 60.0
    #: escalate to replacement once a slot has been restarted this many
    #: times and crosses threshold again — restarting did not cure it,
    #: so treat the box as compromised rather than merely crashed.
    escalate_after: int = 1


@dataclass
class GroupView:
    """The orchestrator's snapshot the planner decides from."""

    n: int
    t: int
    now: float
    #: slots with a live (running, unfenced) service
    live: Set[int]
    #: live slots currently *not* under suspicion
    healthy: Set[int]
    #: decayed total score per slot
    scores: Dict[int, float]
    #: decayed Byzantine-only score per slot
    byzantine: Dict[int, float]
    #: spare replica names available for seating
    spares: int
    #: current roster vacancies (already-retired seats)
    vacancies: int
    #: time of the last committed epoch change (any kind rotates shares)
    last_refresh: float
    #: an epoch change is being executed right now
    in_flight: bool
    #: per-slot earliest time the planner may target it again
    cooldowns: Dict[int, float]
    #: completed restarts per slot (drives escalation to replacement)
    restarts: Dict[int, int]
    #: fenced slots whose roster seat is still occupied but has no live
    #: process behind it (a rolled-back restart/replace left them dark);
    #: candidates for (re-)replacement once their cooldown expires
    fenced: Set[int]


class RecoveryPlanner:
    """Pure decision logic: :meth:`plan` maps a view to at most one action."""

    def __init__(
        self,
        config: Optional[PlannerConfig] = None,
        recorder: Optional[Recorder] = None,
    ):
        self.config = config or PlannerConfig()
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.vetoes = 0
        self.fallbacks = 0

    # -- guardrails ------------------------------------------------------------------

    def _fence_allowed(self, view: GroupView, slot: int) -> bool:
        """Would shutting down ``slot`` leave ``>= n - t`` healthy replicas?

        A slot that is already unhealthy (suspected or dead) does not
        count toward the healthy set, so fencing it costs nothing; a
        healthy slot may only be fenced while a full quorum remains
        without it.  Either way the *live* floor holds too: the channel
        needs ``n - t`` participants to order anything at all.
        """
        floor = view.n - view.t
        healthy_after = len(view.healthy) - (1 if slot in view.healthy else 0)
        live_after = len(view.live) - (1 if slot in view.live else 0)
        return healthy_after >= floor and live_after >= floor

    def _veto(self, view: GroupView, slot: int, why: str) -> None:
        self.vetoes += 1
        if self.obs.enabled:
            self.obs.count("heal.guardrail.vetoed")
            self.obs.count(f"heal.guardrail.vetoed.{why}")

    # -- candidate selection ---------------------------------------------------------

    def _suspects(self, view: GroupView) -> Iterable[int]:
        """Live slots over threshold, worst first, cooldowns respected."""
        over = []
        for slot in view.live:
            if view.cooldowns.get(slot, 0.0) > view.now:
                continue
            byz = view.byzantine.get(slot, 0.0)
            total = view.scores.get(slot, 0.0)
            if byz >= self.config.replace_threshold:
                over.append((byz + total, slot))
            elif total >= self.config.restart_threshold:
                over.append((total, slot))
        return [slot for _rank, slot in sorted(over, reverse=True)]

    def plan(self, view: GroupView) -> Optional[Action]:
        """The next action, or ``None`` (nothing to do / serialized out)."""
        if view.in_flight:
            return None  # guardrail 1: one epoch change at a time
        for slot in self._suspects(view):
            byzantine = (
                view.byzantine.get(slot, 0.0) >= self.config.replace_threshold
                # a restart that did not cure the slot means the fault
                # survives process recycling — surgical path from here on
                or view.restarts.get(slot, 0) >= self.config.escalate_after
            )
            if not self._fence_allowed(view, slot):
                self._veto(view, slot, "quorum")
                if byzantine:
                    # cannot evict without losing quorum: rotate shares so
                    # whatever the intruder holds goes stale regardless.
                    self.fallbacks += 1
                    if self.obs.enabled:
                        self.obs.count("heal.fallback.refresh_only")
                        self.obs.count("heal.plan.refresh")
                    return RefreshShares(fallback=True)
                continue
            if byzantine:
                if view.spares > 0:
                    if self.obs.enabled:
                        self.obs.count("heal.plan.replace")
                    return DrainAndReplace(slot=slot)
                if view.vacancies < view.t:
                    if self.obs.enabled:
                        self.obs.count("heal.plan.quarantine")
                    return Quarantine(slot=slot)
                # guardrail 3: no spare and no admissible vacancy left —
                # refresh-only degradation.
                self.fallbacks += 1
                if self.obs.enabled:
                    self.obs.count("heal.fallback.refresh_only")
                    self.obs.count("heal.plan.refresh")
                return RefreshShares(fallback=True)
            if self.obs.enabled:
                self.obs.count("heal.plan.restart")
            return RestartReplica(slot=slot)
        # A dark slot (fenced, seat occupied, no live process — a prior
        # repair rolled back) is free to replace: it contributes nothing
        # to the healthy count, so the quorum guardrail cannot object.
        for slot in sorted(view.fenced):
            if view.cooldowns.get(slot, 0.0) > view.now:
                continue
            if view.spares > 0:
                if self.obs.enabled:
                    self.obs.count("heal.plan.replace")
                return DrainAndReplace(slot=slot)
        interval = self.config.refresh_interval
        if interval is not None and view.now - view.last_refresh >= interval:
            if self.obs.enabled:
                self.obs.count("heal.plan.refresh")
            return RefreshShares()
        return None


__all__ = [
    "Action",
    "RefreshShares",
    "DrainAndReplace",
    "RestartReplica",
    "Quarantine",
    "PlannerConfig",
    "GroupView",
    "RecoveryPlanner",
]
